module Pwl = Proxim_waveform.Pwl
module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Rootfind = Proxim_util.Rootfind

type glitch = { v_extreme : float; t_extreme : float; full_swing : bool }

(* Boolean resting level of the output before either input moves: the
   fall pin still high, the rise pin still low, every other pin at its
   non-controlling level.  The gate is a monotone series/parallel
   pull-down, so one 2-valued evaluation decides the glitch polarity:
   resting high (NAND-like) means a negative-going glitch measured
   against Vil; resting low (NOR-like) a positive-going one against
   Vih. *)
let rests_high gate th ~fall_pin ~rise_pin =
  let base = Gate.noncontrolling_sensitization gate ~pin:fall_pin in
  let level p =
    if p = fall_pin then true
    else if p = rise_pin then false
    else base.(p) > th.Vtc.vdd /. 2.
  in
  let rec conducts = function
    | Gate.Pin p -> level p
    | Gate.Series l -> List.for_all conducts l
    | Gate.Parallel l -> List.exists conducts l
  in
  not (conducts gate.Gate.pulldown)

let glitch ?opts ?load gate th ~fall_pin ~rise_pin ~tau_fall ~tau_rise ~sep =
  if fall_pin = rise_pin then invalid_arg "Inertial.glitch: same pin";
  let margin = 0.3e-9 in
  let t_fall =
    margin +. tau_fall +. Float.max 0. (tau_rise -. sep)
  in
  let t_rise = t_fall +. sep in
  let fall_stim = { Measure.edge = Measure.Fall; tau = tau_fall; cross_time = t_fall } in
  let rise_stim = { Measure.edge = Measure.Rise; tau = tau_rise; cross_time = t_rise } in
  let base = Gate.noncontrolling_sensitization gate ~pin:fall_pin in
  let inputs =
    Array.init gate.Gate.fan_in (fun p ->
      if p = fall_pin then Measure.ramp_of_stimulus th fall_stim
      else if p = rise_pin then Measure.ramp_of_stimulus th rise_stim
      else Pwl.constant base.(p))
  in
  let run = Measure.simulate ?opts ?load gate ~inputs in
  let out = run.Measure.out_wave in
  let lo = Pwl.start_time out and hi = Pwl.end_time out in
  if rests_high gate th ~fall_pin ~rise_pin then begin
    let t_extreme, v_extreme = Pwl.extremum out ~lo ~hi in
    { v_extreme; t_extreme; full_swing = v_extreme <= th.Vtc.vil }
  end
  else begin
    let t_extreme, v_extreme = Pwl.maximum out ~lo ~hi in
    { v_extreme; t_extreme; full_swing = v_extreme >= th.Vtc.vih }
  end

let minimum_valid_separation ?opts ?load ?search gate th
    ~fall_pin ~rise_pin ~tau_fall ~tau_rise =
  let high = rests_high gate th ~fall_pin ~rise_pin in
  let search =
    match search with
    | Some s -> s
    | None -> if high then (-3e-9, 1e-9) else (-1e-9, 3e-9)
  in
  let f sep =
    let g = glitch ?opts ?load gate th ~fall_pin ~rise_pin ~tau_fall ~tau_rise ~sep in
    (* signed glitch-magnitude shortfall: negative once the extreme has
       passed the measurement threshold (the transition completed) *)
    if high then g.v_extreme -. th.Vtc.vil else th.Vtc.vih -. g.v_extreme
  in
  let lo, hi = search in
  match Rootfind.bisect ~tol:1e-13 ~f lo hi with
  | root -> root
  | exception Rootfind.No_bracket ->
    failwith
      "Inertial.minimum_valid_separation: glitch never crosses the \
       measurement threshold in the search window"
