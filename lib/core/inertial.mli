(** Inertial delay as a proximity effect (paper §6).

    When two inputs of a gate switch in opposite directions — one
    releasing the network that holds the resting output level, the other
    enabling the opposing network — a glitch appears at the output whose
    magnitude depends on the separation between the transitions.  Only
    when the glitch extreme passes the measurement threshold has the
    output "completed a transition"; the minimum separation for which
    that happens {e is} the inertial delay of the gate.

    Glitch polarity follows the output's boolean resting level (computed
    from the pull-down network with the fall pin high, the rise pin low
    and the other pins at their non-controlling levels): a NAND-like
    gate rests high and glitches downward (measured against [Vil]); a
    NOR-like gate rests low and glitches upward (against [Vih]). *)

type glitch = {
  v_extreme : float;  (** most extreme output voltage reached, V *)
  t_extreme : float;  (** when it is reached, s *)
  full_swing : bool;
      (** whether the output completed a transition (the extreme passed
          the relevant measurement threshold) *)
}

val rests_high :
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  fall_pin:int ->
  rise_pin:int ->
  bool
(** The output's boolean resting level for the opposite-transition
    stimulus: pull-down conduction with [fall_pin] high, [rise_pin] low
    and the other pins at their non-controlling levels.  [true] (NAND
    family) means the glitch dips downward from Vdd; [false] (NOR
    family) means it pokes upward from ground. *)

val glitch :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  fall_pin:int ->
  rise_pin:int ->
  tau_fall:float ->
  tau_rise:float ->
  sep:float ->
  glitch
(** Simulate the opposite-transition pair on the golden simulator.
    [sep] is the rise-pin threshold crossing minus the fall-pin
    threshold crossing (negative = the rising input comes first).
    For a gate resting high [v_extreme] is the output minimum and
    [full_swing] tests [v_extreme <= Vil]; for a gate resting low it is
    the maximum, tested against [Vih]. *)

val minimum_valid_separation :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  ?search:float * float ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  fall_pin:int ->
  rise_pin:int ->
  tau_fall:float ->
  tau_rise:float ->
  float
(** The inertial delay: the separation at which the glitch magnitude
    exactly reaches the measurement threshold, found by bisection over
    [search].  For a gate resting high the glitch completes at or below
    the root (the rising input acting first kills the resting level;
    default search [-3 ns, +1 ns]); for a gate resting low it completes
    at or above it (default search [-1 ns, +3 ns]).  Raises [Failure]
    when the glitch never/always completes inside the search window. *)
