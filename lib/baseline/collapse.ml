module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Proximity = Proxim_core.Proximity

type variant = Jun | Nabavi_lishi

type failure = Never_switched | Transition_incomplete

exception Prediction_failed of { gate : string; failure : failure }

let failure_message ~gate = function
  | Never_switched ->
    Printf.sprintf
      "Collapse.predict: equivalent inverter for %s never switched" gate
  | Transition_incomplete ->
    Printf.sprintf
      "Collapse.predict: output transition of the %s equivalent inverter is \
       incomplete"
      gate

let () =
  Printexc.register_printer (function
    | Prediction_failed { gate; failure } -> Some (failure_message ~gate failure)
    | _ -> None)

type prediction = {
  out_cross : float;
  out_transition : float;
  wn_eq : float;
  wp_eq : float;
  ref_pin : int;
}

(* Series/parallel width reduction.  [conducts pin] decides whether a
   transistor participates; its width is [w]. *)
let rec reduce_width nw ~conducts ~w =
  match nw with
  | Gate.Pin p -> if conducts p then w else 0.
  | Gate.Parallel l ->
    List.fold_left (fun acc child -> acc +. reduce_width child ~conducts ~w) 0. l
  | Gate.Series l ->
    let inverse_sum =
      List.fold_left
        (fun acc child ->
          match acc with
          | None -> None
          | Some s ->
            let weq = reduce_width child ~conducts ~w in
            if weq <= 0. then None else Some (s +. (1. /. weq)))
        (Some 0.) l
    in
    (match inverse_sum with
     | None | Some 0. -> 0.
     | Some s -> 1. /. s)

(* Does the network conduct under a boolean assignment? *)
let rec network_conducts nw ~on =
  match nw with
  | Gate.Pin p -> on p
  | Gate.Series l -> List.for_all (fun c -> network_conducts c ~on) l
  | Gate.Parallel l -> List.exists (fun c -> network_conducts c ~on) l

let equivalent_widths gate ~switching ~edge =
  let tech = gate.Gate.tech in
  let vdd = tech.Tech.vdd in
  let base =
    match switching with
    | pin :: _ -> Gate.noncontrolling_sensitization gate ~pin
    | [] -> invalid_arg "Collapse.equivalent_widths: no switching input"
  in
  ignore edge;
  let is_switching p = List.mem p switching in
  let nmos_conducts p = is_switching p || base.(p) > vdd /. 2. in
  let pmos_conducts p = is_switching p || base.(p) < vdd /. 2. in
  let pulldown = gate.Gate.pulldown in
  let pullup = Gate.dual pulldown in
  let wn_eq = reduce_width pulldown ~conducts:nmos_conducts ~w:gate.Gate.wn in
  let wp_eq = reduce_width pullup ~conducts:pmos_conducts ~w:gate.Gate.wp in
  (* degenerate reductions (a blocked network) fall back to a minimum-size
     device so the equivalent inverter stays simulatable *)
  let floor_w = 0.05 *. Float.min gate.Gate.wn gate.Gate.wp in
  (Float.max wn_eq floor_w, Float.max wp_eq floor_w)

(* In the network that drives the output for this edge, do the switching
   transistors assist each other (parallel: one suffices) or gate each
   other (series: all required)? *)
let switching_assist gate ~switching ~edge =
  let base =
    match switching with
    | pin :: _ -> Gate.noncontrolling_sensitization gate ~pin
    | [] -> assert false
  in
  let vdd = gate.Gate.tech.Tech.vdd in
  let driving_network, stable_on =
    match edge with
    | Measure.Fall ->
      (* inputs fall -> output rises -> pull-up drives; a stable pin's
         PMOS conducts when held low *)
      (Gate.dual gate.Gate.pulldown, fun p -> base.(p) < vdd /. 2.)
    | Measure.Rise -> (gate.Gate.pulldown, fun p -> base.(p) > vdd /. 2.)
  in
  (* conduction with exactly one switching pin active *)
  match switching with
  | [] -> assert false
  | first :: _ ->
    let on p =
      if List.mem p switching then p = first else stable_on p
    in
    network_conducts driving_network ~on

let equivalent_event variant gate ~switching ~edge
    ~(events : Proximity.event list) =
  let assist = switching_assist gate ~switching ~edge in
  (* the critical input: earliest crossing when the switching transistors
     assist each other, latest when they gate each other — the input the
     equivalent-inverter response is referenced to *)
  let pick better =
    match events with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun (acc : Proximity.event) (e : Proximity.event) ->
          if better e.Proximity.cross_time acc.Proximity.cross_time then e
          else acc)
        first rest
  in
  let critical = if assist then pick ( < ) else pick ( > ) in
  match variant with
  | Jun ->
    (* the critical input alone defines the waveform *)
    (critical.Proximity.tau, critical.Proximity.cross_time,
     critical.Proximity.pin)
  | Nabavi_lishi ->
    (* blend the switching inputs: average transition time, crossing
       weighted by slew rate (faster inputs contribute current sooner) *)
    let n = float_of_int (List.length events) in
    let tau_eq =
      List.fold_left (fun acc (e : Proximity.event) -> acc +. e.Proximity.tau)
        0. events
      /. n
    in
    let wsum, twsum =
      List.fold_left
        (fun (ws, ts) (e : Proximity.event) ->
          let w = 1. /. e.Proximity.tau in
          (ws +. w, ts +. (w *. e.Proximity.cross_time)))
        (0., 0.) events
    in
    (tau_eq, twsum /. wsum, critical.Proximity.pin)

let predict ?opts ?load variant gate th ~events =
  let edge =
    match events with
    | [] -> invalid_arg "Collapse.predict: no events"
    | (first : Proximity.event) :: rest ->
      if List.exists (fun (e : Proximity.event) -> e.Proximity.edge <> first.Proximity.edge) rest
      then invalid_arg "Collapse.predict: mixed edges";
      first.Proximity.edge
  in
  let switching = List.map (fun (e : Proximity.event) -> e.Proximity.pin) events in
  let wn_eq, wp_eq = equivalent_widths gate ~switching ~edge in
  let tau_eq, cross_eq, ref_pin =
    equivalent_event variant gate ~switching ~edge ~events
  in
  let load = match load with Some l -> l | None -> gate.Gate.load in
  let inv = Gate.inverter ~wn:wn_eq ~wp:wp_eq ~load gate.Gate.tech in
  let stim = { Measure.edge; tau = tau_eq; cross_time = cross_eq } in
  (* keep the ramp start positive by shifting the whole experiment and
     subtracting the shift from the result *)
  let shift = Float.max 0. (tau_eq +. 0.2e-9 -. cross_eq) in
  let stim = { stim with Measure.cross_time = cross_eq +. shift } in
  let wave = Measure.ramp_of_stimulus th stim in
  let run = Measure.simulate ?opts inv ~inputs:[| wave |] in
  let out = run.Measure.out_wave in
  let out_cross =
    match
      Measure.output_delay th ~input_edge:edge ~input_cross:0. ~output:out
    with
    | Some t -> t -. shift
    | None ->
      raise
        (Prediction_failed
           { gate = gate.Gate.name; failure = Never_switched })
  in
  let out_transition =
    match
      Measure.output_transition_time th ~output_edge:(Measure.opposite edge)
        ~output:out
    with
    | Some t -> t
    | None ->
      raise
        (Prediction_failed
           { gate = gate.Gate.name; failure = Transition_incomplete })
  in
  { out_cross; out_transition; wn_eq; wp_eq; ref_pin }
