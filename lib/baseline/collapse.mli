(** Collapse-to-inverter baselines (the prior art the paper improves on:
    references \[8\] Jun et al. and \[13\] Nabavi-Lishi & Rumin).

    Both methods reduce the multi-input gate to an {e equivalent inverter}
    by series/parallel combination of transistor strengths, derive an
    {e equivalent input waveform} from the switching inputs, and then
    evaluate the inverter's response — here on the golden simulator, so
    the baselines are given their best possible inverter evaluation and
    the comparison isolates the {e collapsing} error the paper criticizes.

    Differences between the two variants:

    - {!Jun}: the equivalent waveform is the single {e critical} input's
      waveform — the earliest-crossing input when the switching
      transistors end up in parallel (they assist), the latest when in
      series (the stack waits for the last one).  Output loading and the
      other inputs' transition times are ignored, which is precisely the
      weakness \[13\] points out.
    - {!Nabavi_lishi}: the equivalent waveform blends the in-window
      switching inputs (average transition time, strength-weighted
      crossing), which tracks loading and slew interaction better. *)

type variant = Jun | Nabavi_lishi

type failure =
  | Never_switched
      (** the collapsed equivalent inverter's output never crossed the
          delay threshold within the simulated horizon *)
  | Transition_incomplete
      (** the output crossed the delay threshold but never completed a
          full [Vil..Vih] transition *)

exception Prediction_failed of { gate : string; failure : failure }
(** Raised by {!predict} when the equivalent-inverter simulation produces
    no measurable response.  Carries the gate name so callers (and the
    lint layer) can report the failure with context; a printer is
    registered, so an uncaught exception still renders a readable
    message. *)

val failure_message : gate:string -> failure -> string
(** The human-readable rendering used by the registered printer. *)

type prediction = {
  out_cross : float;
      (** absolute time at which the output crosses the delay threshold *)
  out_transition : float;  (** predicted output transition time, s *)
  wn_eq : float;  (** equivalent inverter NMOS width, m *)
  wp_eq : float;  (** equivalent inverter PMOS width, m *)
  ref_pin : int;
      (** the critical input the prediction is referenced to: the
          earliest-crossing switching pin when the switching transistors
          assist each other, the latest otherwise.  For {!Jun} this is the
          pin whose waveform became the equivalent waveform; for
          {!Nabavi_lishi} the blend is anchored to it.  The STA layer uses
          it as the path predecessor of the collapsed-baseline mode. *)
}

val equivalent_widths :
  Proxim_gates.Gate.t ->
  switching:int list ->
  edge:Proxim_measure.Measure.edge ->
  float * float
(** [(wn_eq, wp_eq)] of the collapsed inverter: series chains combine as
    the harmonic sum of widths, parallel branches as the plain sum;
    non-switching transistors count as conducting or open according to
    their sensitizing level. *)

val predict :
  ?opts:Proxim_spice.Options.t ->
  ?load:float ->
  variant ->
  Proxim_gates.Gate.t ->
  Proxim_vtc.Vtc.thresholds ->
  events:Proxim_core.Proximity.event list ->
  prediction
(** Collapse, build the equivalent waveform, simulate the equivalent
    inverter under the gate's load, and measure with the multi-input
    gate's thresholds.  All events must share one edge direction
    ([Invalid_argument] otherwise); raises {!Prediction_failed} when the
    equivalent inverter produces no measurable response. *)
