module Gate = Proxim_gates.Gate
module Dc = Proxim_spice.Dc
module Pwl = Proxim_waveform.Pwl
module Floatx = Proxim_util.Floatx

type curve = {
  subset : int list;
  vin : float array;
  vout : float array;
  vil : float;
  vih : float;
  vm : float;
}

type thresholds = { vil : float; vih : float; vdd : float }

(* Central-difference slope of the VTC at each interior sample. *)
let slopes ~vin ~vout =
  let n = Array.length vin in
  Array.init n (fun i ->
    if i = 0 then (vout.(1) -. vout.(0)) /. (vin.(1) -. vin.(0))
    else if i = n - 1 then
      (vout.(n - 1) -. vout.(n - 2)) /. (vin.(n - 1) -. vin.(n - 2))
    else (vout.(i + 1) -. vout.(i - 1)) /. (vin.(i + 1) -. vin.(i - 1)))

(* Unity-gain points: where slope + 1 changes sign.  The first crossing
   (slope passing below -1) is Vil; the last (slope coming back above -1)
   is Vih.  Linear interpolation between samples. *)
let unity_gain_points ~vin ~vout =
  let s = slopes ~vin ~vout in
  let n = Array.length s in
  let crossings = ref [] in
  for i = 0 to n - 2 do
    let f0 = s.(i) +. 1. and f1 = s.(i + 1) +. 1. in
    if (f0 >= 0. && f1 < 0.) || (f0 < 0. && f1 >= 0.) then begin
      let t = if f1 = f0 then 0.5 else f0 /. (f0 -. f1) in
      crossings := Floatx.lerp vin.(i) vin.(i + 1) t :: !crossings
    end
  done;
  match List.rev !crossings with
  | [] -> None
  | [ only ] -> Some (only, only)
  | first :: rest ->
    let rec last = function [ x ] -> x | _ :: tl -> last tl | [] -> first in
    Some (first, last rest)

let switching_threshold ~vin ~vout =
  let n = Array.length vin in
  let f i = vout.(i) -. vin.(i) in
  let rec find i =
    if i >= n - 1 then vin.(n - 1)
    else begin
      let f0 = f i and f1 = f (i + 1) in
      if (f0 >= 0. && f1 < 0.) || (f0 < 0. && f1 >= 0.) then
        let t = if f1 = f0 then 0.5 else f0 /. (f0 -. f1) in
        Floatx.lerp vin.(i) vin.(i + 1) t
      else find (i + 1)
    end
  in
  find 0

let curve ?(points = 401) ?opts gate ~subset =
  let fan_in = gate.Gate.fan_in in
  let subset = List.sort_uniq compare subset in
  if subset = [] then invalid_arg "Vtc.curve: empty subset";
  List.iter
    (fun p ->
      if p < 0 || p >= fan_in then invalid_arg "Vtc.curve: pin out of range")
    subset;
  let vdd = gate.Gate.tech.Proxim_gates.Tech.vdd in
  (* static levels for the non-switching pins: sensitize the first
     switching pin *)
  let base_levels =
    match subset with
    | pin :: _ -> Gate.noncontrolling_sensitization gate ~pin
    | [] -> assert false
  in
  let inputs =
    Array.init fan_in (fun i -> Pwl.constant base_levels.(i))
  in
  let inst = Gate.instantiate gate ~inputs in
  let sources =
    List.map (fun p -> inst.Gate.input_sources.(p)) subset
  in
  let overrides =
    List.filter_map
      (fun p ->
        if List.mem p subset then None
        else Some (inst.Gate.input_sources.(p), base_levels.(p)))
      (List.init fan_in (fun i -> i))
  in
  let vin = Floatx.linspace 0. vdd points in
  let sols = Dc.sweep_many ?opts ~overrides inst.Gate.net ~sources ~values:vin in
  let vout =
    Array.map (fun s -> s.Dc.voltages.(inst.Gate.out)) sols
  in
  let vil, vih =
    match unity_gain_points ~vin ~vout with
    | Some (lo, hi) -> (lo, hi)
    | None ->
      (* pathological (gain never reaches -1); fall back to Vdd/2 *)
      (vdd /. 2., vdd /. 2.)
  in
  let vm = switching_threshold ~vin ~vout in
  { subset; vin; vout; vil; vih; vm }

let subsets fan_in =
  (* binary counting, 1 .. 2^n - 1, ordered by popcount then value so that
     singletons come first *)
  let all = List.init ((1 lsl fan_in) - 1) (fun i -> i + 1) in
  let pins mask =
    List.filter (fun p -> mask land (1 lsl p) <> 0)
      (List.init fan_in (fun i -> i))
  in
  let popcount m = List.length (pins m) in
  let sorted =
    List.sort
      (fun a b ->
        match compare (popcount a) (popcount b) with
        | 0 -> compare a b
        | c -> c)
      all
  in
  List.map pins sorted

(* The 2^n - 1 curves are independent DC sweeps: fan them out. *)
let family ?points ?opts ?pool gate =
  let pool =
    match pool with Some p -> p | None -> Proxim_util.Pool.default ()
  in
  let build subset = curve ?points ?opts gate ~subset in
  Proxim_util.Pool.map_list pool build (subsets gate.Gate.fan_in)

let choose curves =
  match curves with
  | [] -> invalid_arg "Vtc.choose: empty family"
  | (first : curve) :: _ ->
    let vil =
      List.fold_left
        (fun acc (c : curve) -> Float.min acc c.vil)
        Float.infinity curves
    in
    let vih =
      List.fold_left
        (fun acc (c : curve) -> Float.max acc c.vih)
        Float.neg_infinity curves
    in
    let vdd = first.vin.(Array.length first.vin - 1) in
    { vil; vih; vdd }

let thresholds ?points ?opts ?pool gate =
  choose (family ?points ?opts ?pool gate)

let pp_thresholds ppf th =
  Format.fprintf ppf "Vil=%.3f Vih=%.3f Vdd=%.3f" th.vil th.vih th.vdd

let pp_curve ppf c =
  let subset_name =
    String.concat "" (List.map Gate.pin_name c.subset)
  in
  Format.fprintf ppf "{%s}: Vil=%.3f Vm=%.3f Vih=%.3f" subset_name c.vil c.vm
    c.vih
