(** Interpolation on tabulated data.

    The macromodel layer stores delay/transition ratios as 1-D and 3-D
    tables over strictly increasing axes; this module provides the lookup
    machinery: piecewise-linear and monotone-cubic (PCHIP) interpolation in
    one dimension, and trilinear interpolation on a rectilinear 3-D grid.

    All interpolators clamp queries to the axis range by default — this is
    the behaviour the macromodels want, since outside the tabulated range
    the physics saturates to the single-input asymptote. *)

type extrapolation =
  | Clamp  (** evaluate at the nearest axis endpoint *)
  | Linear  (** extend the boundary segment's slope *)

val bracket : float array -> float -> int
(** [bracket xs x] is the index [i] such that [xs.(i) <= x <= xs.(i+1)],
    clamped to [\[0, length xs - 2\]].  Requires [xs] strictly increasing
    with at least two entries.  Binary search. *)

val linear :
  ?extrapolation:extrapolation -> float array -> float array -> float -> float
(** [linear xs ys x] is piecewise-linear interpolation of the samples
    [(xs.(i), ys.(i))] at [x].  Requires [xs] strictly increasing and
    [length xs = length ys >= 2]. *)

type pchip
(** A monotone piecewise-cubic interpolant (Fritsch–Carlson): it never
    overshoots the data, which keeps delay tables monotone where the
    underlying physics is. *)

val pchip_make : float array -> float array -> pchip
(** Build the interpolant.  Requires strictly increasing [xs] and matching
    lengths (at least 2 points; 2 points degrade to linear). *)

val pchip_eval : ?extrapolation:extrapolation -> pchip -> float -> float
(** Evaluate; extrapolation policy as in {!linear} (default [Clamp]). *)

val pchip_knots : pchip -> float array * float array
(** The interpolant's knots [(xs, ys)] — used by the serialization layer
    to round-trip tables exactly. *)

type grid3 = {
  xs : float array;
  ys : float array;
  zs : float array;
  values : float array array array;  (** indexed [values.(ix).(iy).(iz)] *)
}
(** A rectilinear 3-D table. *)

val grid3_make :
  ?pool:Pool.t ->
  xs:float array ->
  ys:float array ->
  zs:float array ->
  f:(float -> float -> float -> float) ->
  unit ->
  grid3
(** Tabulate [f] on the grid.  With [pool], the grid's (x, y) rows are
    evaluated across the pool's domains; [f] must be safe to call from
    several domains at once.  The result is bit-identical to the serial
    evaluation whatever the pool width. *)

val grid3_make_many :
  ?pool:Pool.t ->
  xs:float array ->
  ys:float array ->
  zs:float array ->
  fs:(float -> float -> float -> float) array ->
  unit ->
  grid3 array
(** Tabulate several functions on the {e same} grid as one batched job:
    all (grid, x, y) rows go through a single pool fan-out, so the
    domains stay fed across the whole batch instead of draining between
    per-grid jobs.  [grid3_make_many ~fs:[|f|]] ≡ [[|grid3_make ~f|]],
    bit for bit. *)

val trilinear :
  ?extrapolation:extrapolation -> grid3 -> float -> float -> float -> float
(** [trilinear g x y z] is trilinear interpolation.  Extrapolation policy
    as in {!linear} (default [Clamp]: queries outside the bounding box
    evaluate at the nearest face; [Linear] extends each boundary cell's
    gradient). *)

val bilinear_pchip_z :
  ?extrapolation:extrapolation -> grid3 -> float -> float -> float -> float
(** Like {!trilinear} but with monotone-cubic (PCHIP) interpolation along
    the [z] axis and linear interpolation across [x] and [y] — the right
    tool when the tabulated surface is smooth in two axes but strongly
    curved in the third (the proximity macromodels' separation axis). *)

val grid_clamp_events : unit -> int
(** Number of grid-query axis clamps so far: one per axis, per 3-D
    evaluation, whose query fell outside the tabulated range under the
    [Clamp] policy.  A nonzero count means some model was silently
    saturated (the PX302 failure mode); the observability layer surfaces
    it as the [interp.grid_clamps] counter. *)

val reset_grid_clamp_events : unit -> unit
