type extrapolation = Clamp | Linear

let check_axis xs =
  let n = Array.length xs in
  assert (n >= 2);
  for i = 0 to n - 2 do
    assert (xs.(i) < xs.(i + 1))
  done

let bracket xs x =
  let n = Array.length xs in
  if x <= xs.(0) then 0
  else if x >= xs.(n - 1) then n - 2
  else begin
    (* binary search: find i with xs.(i) <= x < xs.(i+1) *)
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if xs.(mid) <= x then lo := mid else hi := mid
    done;
    !lo
  end

let linear ?(extrapolation = Clamp) xs ys x =
  check_axis xs;
  assert (Array.length xs = Array.length ys);
  let n = Array.length xs in
  let x =
    match extrapolation with
    | Clamp -> Floatx.clamp ~lo:xs.(0) ~hi:xs.(n - 1) x
    | Linear -> x
  in
  let i = bracket xs x in
  let t = (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)) in
  Floatx.lerp ys.(i) ys.(i + 1) t

type pchip = {
  pxs : float array;
  pys : float array;
  slopes : float array;  (** derivative at each knot *)
}

(* Fritsch–Carlson monotone slopes. *)
let pchip_make xs ys =
  check_axis xs;
  assert (Array.length xs = Array.length ys);
  let n = Array.length xs in
  let h = Array.init (n - 1) (fun i -> xs.(i + 1) -. xs.(i)) in
  let delta = Array.init (n - 1) (fun i -> (ys.(i + 1) -. ys.(i)) /. h.(i)) in
  let d = Array.make n 0. in
  if n = 2 then begin
    d.(0) <- delta.(0);
    d.(1) <- delta.(0)
  end
  else begin
    d.(0) <- delta.(0);
    d.(n - 1) <- delta.(n - 2);
    for i = 1 to n - 2 do
      if delta.(i - 1) *. delta.(i) <= 0. then d.(i) <- 0.
      else begin
        (* weighted harmonic mean keeps monotonicity *)
        let w1 = (2. *. h.(i)) +. h.(i - 1) in
        let w2 = h.(i) +. (2. *. h.(i - 1)) in
        d.(i) <- (w1 +. w2) /. ((w1 /. delta.(i - 1)) +. (w2 /. delta.(i)))
      end
    done
  end;
  { pxs = xs; pys = ys; slopes = d }

let pchip_eval ?(extrapolation = Clamp) p x =
  let xs = p.pxs and ys = p.pys and d = p.slopes in
  let n = Array.length xs in
  let x =
    match extrapolation with
    | Clamp -> Floatx.clamp ~lo:xs.(0) ~hi:xs.(n - 1) x
    | Linear -> x
  in
  if x <= xs.(0) then ys.(0) +. (d.(0) *. (x -. xs.(0)))
  else if x >= xs.(n - 1) then ys.(n - 1) +. (d.(n - 1) *. (x -. xs.(n - 1)))
  else begin
    let i = bracket xs x in
    let h = xs.(i + 1) -. xs.(i) in
    let t = (x -. xs.(i)) /. h in
    (* cubic Hermite basis *)
    let t2 = t *. t in
    let t3 = t2 *. t in
    let h00 = (2. *. t3) -. (3. *. t2) +. 1. in
    let h10 = t3 -. (2. *. t2) +. t in
    let h01 = (-2. *. t3) +. (3. *. t2) in
    let h11 = t3 -. t2 in
    (h00 *. ys.(i))
    +. (h10 *. h *. d.(i))
    +. (h01 *. ys.(i + 1))
    +. (h11 *. h *. d.(i + 1))
  end

let pchip_knots p = (Array.copy p.pxs, Array.copy p.pys)

type grid3 = {
  xs : float array;
  ys : float array;
  zs : float array;
  values : float array array array;
}

let grid3_make_many ?pool ~xs ~ys ~zs ~fs () =
  check_axis xs;
  check_axis ys;
  check_axis zs;
  let nx = Array.length xs and ny = Array.length ys in
  let nf = Array.length fs in
  let rows_per = nx * ny in
  (* one task per (grid, x, y) row: coarse enough to amortize scheduling,
     fine enough to load-balance transient analyses of uneven cost — and
     batching the grids into one job keeps every pool domain fed across
     the whole build instead of draining per grid *)
  let row idx =
    let f = fs.(idx / rows_per) in
    let r = idx mod rows_per in
    let x = xs.(r / ny) and y = ys.(r mod ny) in
    Array.map (f x y) zs
  in
  let indices = Array.init (nf * rows_per) Fun.id in
  let rows =
    match pool with
    | None -> Array.map row indices
    | Some pool -> Pool.map pool row indices
  in
  Array.init nf (fun k ->
    let values =
      Array.init nx (fun i -> Array.sub rows ((k * rows_per) + (i * ny)) ny)
    in
    { xs; ys; zs; values })

let grid3_make ?pool ~xs ~ys ~zs ~f () =
  (grid3_make_many ?pool ~xs ~ys ~zs ~fs:[| f |] ()).(0)

(* Out-of-range grid queries are exactly where table models go quietly
   wrong (the PX302 failure mode), so every axis clamp on a live query is
   counted — the observability layer exposes the total as a registry
   counter. *)
let grid_clamp_counter = Dcounter.make ()
let grid_clamp_events () = Dcounter.value grid_clamp_counter
let reset_grid_clamp_events () = Dcounter.reset grid_clamp_counter

let resolve_axis ~extrapolation axis v =
  let lo = axis.(0) and hi = axis.(Array.length axis - 1) in
  if v >= lo && v <= hi then v
  else
    match extrapolation with
    | Clamp ->
      Dcounter.incr grid_clamp_counter;
      Floatx.clamp ~lo ~hi v
    | Linear -> v

let trilinear ?(extrapolation = Clamp) g x y z =
  let x = resolve_axis ~extrapolation g.xs x
  and y = resolve_axis ~extrapolation g.ys y
  and z = resolve_axis ~extrapolation g.zs z in
  let ix = bracket g.xs x and iy = bracket g.ys y and iz = bracket g.zs z in
  let tx = (x -. g.xs.(ix)) /. (g.xs.(ix + 1) -. g.xs.(ix)) in
  let ty = (y -. g.ys.(iy)) /. (g.ys.(iy + 1) -. g.ys.(iy)) in
  let tz = (z -. g.zs.(iz)) /. (g.zs.(iz + 1) -. g.zs.(iz)) in
  let v i j k = g.values.(ix + i).(iy + j).(iz + k) in
  let along_z i j = Floatx.lerp (v i j 0) (v i j 1) tz in
  let along_yz i = Floatx.lerp (along_z i 0) (along_z i 1) ty in
  Floatx.lerp (along_yz 0) (along_yz 1) tx

let bilinear_pchip_z ?(extrapolation = Clamp) g x y z =
  let x = resolve_axis ~extrapolation g.xs x
  and y = resolve_axis ~extrapolation g.ys y
  and z = resolve_axis ~extrapolation g.zs z in
  let ix = bracket g.xs x and iy = bracket g.ys y in
  let tx = (x -. g.xs.(ix)) /. (g.xs.(ix + 1) -. g.xs.(ix)) in
  let ty = (y -. g.ys.(iy)) /. (g.ys.(iy + 1) -. g.ys.(iy)) in
  let along_z i j =
    pchip_eval ~extrapolation (pchip_make g.zs g.values.(ix + i).(iy + j)) z
  in
  let along_yz i = Floatx.lerp (along_z i 0) (along_z i 1) ty in
  Floatx.lerp (along_yz 0) (along_yz 1) tx
