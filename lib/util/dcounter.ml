(* Per-domain cells registered lazily on first use from each domain: the
   DLS initializer allocates a cell and links it into the owner's list
   under the mutex, so the increment path after that touches only
   domain-local state. *)

type t = {
  mutex : Mutex.t;  (** guards [cells] *)
  cells : int ref list ref;
  key : int ref Domain.DLS.key;
}

let make () =
  let mutex = Mutex.create () in
  let cells = ref [] in
  let key =
    Domain.DLS.new_key (fun () ->
      let cell = ref 0 in
      Mutex.lock mutex;
      cells := cell :: !cells;
      Mutex.unlock mutex;
      cell)
  in
  { mutex; cells; key }

let add t n =
  let cell = Domain.DLS.get t.key in
  cell := !cell + n

let incr t = add t 1

let value t =
  Mutex.lock t.mutex;
  let v = List.fold_left (fun acc cell -> acc + !cell) 0 !(t.cells) in
  Mutex.unlock t.mutex;
  v

let reset t =
  Mutex.lock t.mutex;
  List.iter (fun cell -> cell := 0) !(t.cells);
  Mutex.unlock t.mutex
