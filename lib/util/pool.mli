(** A fixed-size domain pool for data-parallel characterization sweeps.

    Built on stdlib [Domain] + [Mutex]/[Condition] only (no external
    dependencies).  The pool owns [domains - 1] worker domains; the
    submitting domain participates in every job, so [create ~domains:n]
    gives [n]-way parallelism.  Jobs are dynamic: workers pull indices
    one at a time from a shared counter, which load-balances the wildly
    varying cost of individual transient analyses.

    Determinism: every index [i] writes only its own result slot, so
    {!map} and {!parallel_for} produce results that are bit-identical to
    a serial loop regardless of the number of domains or the scheduling
    order.  [create ~domains:1] never spawns a domain and degrades to a
    plain loop.

    Nesting is safe: a task that itself calls {!map} or {!parallel_for}
    (on any pool) runs the inner job serially on its own domain instead
    of deadlocking on the pool it is already occupying.  This lets
    coarse-grained parallelism (one task per table) compose with
    fine-grained parallelism (one task per grid point) without
    oversubscription. *)

type t

val create : domains:int -> t
(** [create ~domains:n] spawns [n - 1] worker domains.  Raises
    [Invalid_argument] if [n < 1].  [n = 1] is the serial pool: no
    domains are spawned and every job runs inline. *)

val domains : t -> int
(** The parallelism width the pool was created with. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Jobs submitted after
    shutdown run serially on the calling domain. *)

val parallel_for : t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] runs [f 0 .. f (n-1)], distributing indices
    across the pool's domains.  Blocks until every index has completed.
    If any [f i] raises, the first exception (by completion order) is
    re-raised in the caller after the job drains; remaining indices are
    abandoned. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] is [Array.map f arr] with the elements evaluated
    across the pool's domains.  Result order matches input order.
    Exceptions propagate as in {!parallel_for}. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val run_serially : (unit -> 'a) -> 'a
(** [run_serially f] runs [f] with pool parallelism disabled on the
    current domain: any {!map}/{!parallel_for} reached from inside [f]
    degrades to a plain loop.  Used by the [--domains 1] fallbacks and
    by determinism tests. *)

(** {1 Observability}

    Process-wide counters over every pool in the process, plus a span
    hook.  The counters are contention-free ({!Dcounter}); the
    observability layer registers them as [pool.*] registry metrics. *)

val parallel_jobs : unit -> int
(** Jobs that actually fanned out across domains. *)

val serial_jobs : unit -> int
(** Jobs that degraded to a plain loop (width 1, single index, nested
    call, or post-shutdown submission). *)

val tasks_dispatched : unit -> int
(** Total indices dispatched across all jobs, serial or parallel. *)

val active_domains : unit -> int
(** Domains currently executing job indices — the instantaneous pool
    utilization, sampled by the [pool.active_domains] gauge. *)

type instrument = name:string -> total:int -> (unit -> unit) -> unit

val set_instrument : instrument -> unit
(** Install a wrapper around pool work.  Each parallel job submission is
    wrapped once as ["pool.job"], and each domain's participation in a
    job as ["pool.run"] ([total] is the job's index count), so a tracing
    hook sees one queue/run span pair per task per domain.  The default
    hook is a pass-through; the wrapper must call the thunk exactly
    once. *)

(** {1 The process-wide default pool}

    Library entry points take [?pool] arguments defaulting to this pool,
    so a single [--domains N] flag at the CLI/bench level configures the
    whole characterization stack. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val set_default_domains : int -> unit
(** Configure the width of the default pool.  If the default pool
    already exists with a different width it is shut down and replaced.
    Raises [Invalid_argument] on [n < 1]. *)

val default : unit -> t
(** The process-wide pool, created on first use with
    {!recommended_domains} width (or the width set by
    {!set_default_domains}).  Shut down automatically at exit. *)
