(** A persistent work-stealing domain pool for data-parallel sweeps.

    Built on stdlib [Domain] + [Mutex]/[Condition] only (no external
    dependencies).  The pool owns [domains - 1] worker domains, spawned
    once at {!create} and reused for every subsequent job — submitting
    work never spawns a domain.  The submitting domain participates in
    every job, so [create ~domains:n] gives [n]-way parallelism.

    Scheduling is chunked work-stealing: a job's index range is cut into
    contiguous chunks, block-dealt across one queue per participating
    domain.  Each domain drains its own queue first (contiguous indices,
    cache-friendly sweeps over dense-id arrays) and then steals leftover
    chunks from the other queues, which load-balances wildly varying
    per-index costs (individual transient analyses) as well as skewed
    chunk sizes.  A chunk claim is one [Atomic.fetch_and_add], so for
    coarse chunks the scheduling cost per index is a fraction of an
    atomic operation.

    Determinism: every index [i] writes only its own result slot, so
    {!map} and {!parallel_for} produce results that are bit-identical to
    a serial loop regardless of the number of domains, the chunk size or
    the stealing order.  [create ~domains:1] never spawns a domain and
    degrades to a plain loop.

    Nesting is safe: a task that itself calls {!map} or {!parallel_for}
    (on any pool) runs the inner job serially on its own domain instead
    of deadlocking on the pool it is already occupying.  This lets
    coarse-grained parallelism (one task per table) compose with
    fine-grained parallelism (one task per grid point) without
    oversubscription. *)

type t

val create : domains:int -> t
(** [create ~domains:n] spawns [n - 1] worker domains.  Raises
    [Invalid_argument] if [n < 1].  [n = 1] is the serial pool: no
    domains are spawned and every job runs inline.  Idle workers park on
    a condition variable (a blocking section), so a pool between jobs
    costs nothing and never stalls the GC of the running domain. *)

val domains : t -> int
(** The parallelism width the pool was created with. *)

exception Shut_down
(** Raised by {!parallel_for}/{!map}/{!map_list} when the pool has been
    {!shutdown}.  A typed, catchable error — never a hang on vanished
    workers — so long-lived callers holding a stale pool reference
    (e.g. a [serve] session that outlives a {!set_default_domains}
    reconfiguration) can surface the failure per request and re-fetch
    {!default}.  A printer is registered. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent.  Jobs submitted after
    shutdown raise {!Shut_down}; a submission racing the shutdown may
    instead complete normally on the submitting domain (the check is
    best-effort, the job's completion is not). *)

val default_chunk : n:int -> domains:int -> int
(** The default chunking policy: [max 1 (ceil (n / (4 * domains)))],
    i.e. ~4 chunks per domain — coarse enough to amortize chunk claims,
    with enough slack for the steal loop to rebalance skewed costs. *)

val parallel_for : ?chunk:int -> t -> n:int -> (int -> unit) -> unit
(** [parallel_for pool ~n f] runs [f 0 .. f (n-1)], distributing
    contiguous chunks of indices across the pool's domains and stealing
    to rebalance.  Blocks until every index has completed.  [chunk] is
    the number of indices per claim (default {!default_chunk}); pass
    [~chunk:1] for fully dynamic per-index balancing of expensive,
    uneven tasks.  Raises [Invalid_argument] if [chunk < 1].  Jobs with
    [n <= chunk] run serially on the caller.  If any [f i] raises, the
    first exception (by completion order) is re-raised in the caller
    after the job drains; remaining chunks are abandoned. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** [map pool f arr] is [Array.map f arr] with the elements evaluated
    across the pool's domains.  Result order matches input order.
    [chunk] defaults to [1]: map workloads here (transient analyses,
    VTC curves) are expensive and uneven, so per-element claims
    load-balance best.  Exceptions propagate as in {!parallel_for}. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val run_serially : (unit -> 'a) -> 'a
(** [run_serially f] runs [f] with pool parallelism disabled on the
    current domain: any {!map}/{!parallel_for} reached from inside [f]
    degrades to a plain loop.  Used by the [--domains 1] fallbacks and
    by determinism tests. *)

(** {1 Observability}

    Process-wide counters over every pool in the process, plus a span
    hook.  The counters are contention-free ({!Dcounter}); the
    observability layer registers them as [pool.*] registry metrics. *)

val parallel_jobs : unit -> int
(** Jobs that actually fanned out across domains. *)

val serial_jobs : unit -> int
(** Jobs that degraded to a plain loop (width 1, job no larger than one
    chunk, or nested call). *)

val tasks_dispatched : unit -> int
(** Total indices dispatched across all jobs, serial or parallel. *)

val chunks_dispatched : unit -> int
(** Chunks dealt out across parallel jobs.  [tasks / chunks] is the
    average scheduling granularity actually achieved. *)

val steals : unit -> int
(** Chunks executed by a domain other than the queue's owner.  A steady
    non-zero rate means the steal loop is rebalancing skewed work; zero
    on a wide pool with uneven levels suggests chunks are too coarse. *)

val active_domains : unit -> int
(** Domains currently executing job chunks — the instantaneous pool
    utilization, sampled by the [pool.active_domains] gauge. *)

type instrument = name:string -> total:int -> (unit -> unit) -> unit

val set_instrument : instrument -> unit
(** Install a wrapper around pool work.  Each parallel job submission is
    wrapped once as ["pool.job"], and each domain's participation in a
    job as ["pool.run"] ([total] is the job's index count), so a tracing
    hook sees one queue/run span pair per job per domain — the per-domain
    occupancy of a job is the width of its ["pool.run"] spans.  The
    default hook is a pass-through; the wrapper must call the thunk
    exactly once. *)

(** {1 The process-wide default pool}

    Library entry points take [?pool] arguments defaulting to this pool,
    so a single [--domains N] flag at the CLI/bench level configures the
    whole characterization and STA stack.  The default pool is created
    once and reused by every [Store.characterize], [Sta.analyze] and
    [Timing.update] call in the process. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val set_default_domains : int -> unit
(** Configure the width of the default pool.  If the default pool
    already exists with a different width it is shut down and replaced.
    Raises [Invalid_argument] on [n < 1]. *)

val default : unit -> t
(** The process-wide pool, created on first use with
    {!recommended_domains} width (or the width set by
    {!set_default_domains}).  Shut down automatically at exit. *)
