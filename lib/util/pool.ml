(* A worker is either executing a job's indices or parked on [work_cv]
   waiting for [generation] to advance.  One job runs at a time
   ([submit_m]); the submitting domain executes indices alongside the
   workers, then parks on [done_cv] until the last index completes. *)

type job = {
  fn : int -> unit;
  total : int;
  next : int Atomic.t;  (** next index to claim *)
  completed : int Atomic.t;
  mutable failed : (exn * Printexc.raw_backtrace) option;
      (** first failure; protected by the pool mutex *)
}

type t = {
  width : int;
  mutex : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  submit_m : Mutex.t;
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

(* Set while a domain is executing job indices: inner parallel calls
   from such a domain run serially instead of re-entering a pool. *)
let busy_key = Domain.DLS.new_key (fun () -> ref false)

let busy () = !(Domain.DLS.get busy_key)

let run_serially f =
  let flag = Domain.DLS.get busy_key in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let domains t = t.width

(* --- observability ------------------------------------------------- *)

(* Process-wide job counters and a span hook.  The hook defaults to a
   pass-through closure so the uninstrumented pool stays dependency-free;
   the observability layer installs a tracing wrapper at enable time. *)
let c_parallel_jobs = Dcounter.make ()
let c_serial_jobs = Dcounter.make ()
let c_tasks = Dcounter.make ()
let c_active = Atomic.make 0
let parallel_jobs () = Dcounter.value c_parallel_jobs
let serial_jobs () = Dcounter.value c_serial_jobs
let tasks_dispatched () = Dcounter.value c_tasks
let active_domains () = Atomic.get c_active

type instrument = name:string -> total:int -> (unit -> unit) -> unit

let instrument : instrument ref = ref (fun ~name:_ ~total:_ f -> f ())
let set_instrument i = instrument := i

let execute pool job =
  let flag = Domain.DLS.get busy_key in
  let saved = !flag in
  flag := true;
  let rec claim () =
    let i = Atomic.fetch_and_add job.next 1 in
    if i < job.total then begin
      (match job.failed with
       | Some _ -> ()  (* drain without working once something failed *)
       | None -> (
         try job.fn i
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           Mutex.lock pool.mutex;
           if job.failed = None then job.failed <- Some (e, bt);
           Mutex.unlock pool.mutex));
      let done_before = Atomic.fetch_and_add job.completed 1 in
      if done_before + 1 = job.total then begin
        Mutex.lock pool.mutex;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.mutex
      end;
      claim ()
    end
  in
  Atomic.incr c_active;
  Fun.protect
    ~finally:(fun () -> Atomic.decr c_active)
    (fun () -> !instrument ~name:"pool.run" ~total:job.total claim);
  flag := saved

let worker_loop pool =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while pool.generation = !seen && not pool.stop do
      Condition.wait pool.work_cv pool.mutex
    done;
    if pool.stop then Mutex.unlock pool.mutex
    else begin
      seen := pool.generation;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with Some j -> execute pool j | None -> ());
      loop ()
    end
  in
  loop ()

let create ~domains:width =
  if width < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      width;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      submit_m = Mutex.create ();
      job = None;
      generation = 0;
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (width - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  pool.stop <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let serial_for ~n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for pool ~n f =
  if n <= 0 then ()
  else if pool.width = 1 || n = 1 || busy () || pool.stop then begin
    Dcounter.incr c_serial_jobs;
    Dcounter.add c_tasks n;
    serial_for ~n f
  end
  else begin
    Dcounter.incr c_parallel_jobs;
    Dcounter.add c_tasks n;
    !instrument ~name:"pool.job" ~total:n (fun () ->
    Mutex.lock pool.submit_m;
    let job =
      {
        fn = f;
        total = n;
        next = Atomic.make 0;
        completed = Atomic.make 0;
        failed = None;
      }
    in
    Mutex.lock pool.mutex;
    pool.job <- Some job;
    pool.generation <- pool.generation + 1;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.mutex;
    execute pool job;
    Mutex.lock pool.mutex;
    while Atomic.get job.completed < job.total do
      Condition.wait pool.done_cv pool.mutex
    done;
    pool.job <- None;
    Mutex.unlock pool.mutex;
    Mutex.unlock pool.submit_m;
    match job.failed with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ())
  end

let map pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for pool ~n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* every slot filled *))
      out
  end

let map_list pool f l = Array.to_list (map pool f (Array.of_list l))

(* --- default pool -------------------------------------------------- *)

let recommended_domains () = Domain.recommended_domain_count ()

let default_m = Mutex.create ()
let default_pool = ref None
let default_width = ref None
let at_exit_installed = ref false

let default () =
  Mutex.lock default_m;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let width =
        match !default_width with
        | Some w -> w
        | None -> recommended_domains ()
      in
      let p = create ~domains:width in
      default_pool := Some p;
      if not !at_exit_installed then begin
        at_exit_installed := true;
        at_exit (fun () ->
          Mutex.lock default_m;
          let p = !default_pool in
          default_pool := None;
          Mutex.unlock default_m;
          Option.iter shutdown p)
      end;
      p
  in
  Mutex.unlock default_m;
  pool

let set_default_domains width =
  if width < 1 then invalid_arg "Pool.set_default_domains: domains must be >= 1";
  Mutex.lock default_m;
  let previous =
    match !default_pool with
    | Some p when p.width <> width ->
      default_pool := None;
      Some p
    | _ -> None
  in
  default_width := Some width;
  Mutex.unlock default_m;
  Option.iter shutdown previous
