(* A persistent work-stealing domain pool.

   Worker domains are spawned once at [create] and live until [shutdown];
   submitting a job never spawns a domain.  Each job's index range is cut
   into contiguous chunks which are dealt out across per-participant
   queues; every participant drains its own queue first (contiguous
   slices, cache-friendly) and then turns thief, scanning the other
   queues for leftover chunks.  Chunk claims are a single
   [Atomic.fetch_and_add] on the owning queue's cursor, so the owner and
   its thieves synchronize only when a queue is nearly dry.

   One job runs at a time ([submit_m]); the submitting domain executes
   chunks alongside the workers, then parks on [done_cv] until the last
   chunk completes.  Idle workers park on [work_cv] waiting for
   [generation] to advance — a parked domain sits in a blocking section,
   so an idle pool costs nothing and does not stall the GC. *)

type queue = {
  q_lo : int;  (** first chunk id owned by this queue *)
  q_hi : int;  (** one past the last chunk id owned by this queue *)
  cursor : int Atomic.t;  (** next unclaimed offset from [q_lo] *)
}

type job = {
  fn : int -> unit;
  n : int;  (** index count *)
  chunk : int;  (** indices per chunk *)
  total_chunks : int;
  queues : queue array;  (** one per participant *)
  completed : int Atomic.t;  (** chunks fully executed (or drained) *)
  mutable failed : (exn * Printexc.raw_backtrace) option;
      (** first failure; protected by the pool mutex *)
}

type t = {
  width : int;
  mutex : Mutex.t;
  work_cv : Condition.t;
  done_cv : Condition.t;
  submit_m : Mutex.t;
  mutable job : job option;
  mutable generation : int;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

exception Shut_down

let () =
  Printexc.register_printer (function
    | Shut_down -> Some "Proxim_util.Pool.Shut_down"
    | _ -> None)

(* Set while a domain is executing job chunks: inner parallel calls from
   such a domain run serially instead of re-entering a pool. *)
let busy_key = Domain.DLS.new_key (fun () -> ref false)

let busy () = !(Domain.DLS.get busy_key)

let run_serially f =
  let flag = Domain.DLS.get busy_key in
  let saved = !flag in
  flag := true;
  Fun.protect ~finally:(fun () -> flag := saved) f

let domains t = t.width

(* --- observability ------------------------------------------------- *)

(* Process-wide job counters and a span hook.  The hook defaults to a
   pass-through closure so the uninstrumented pool stays dependency-free;
   the observability layer installs a tracing wrapper at enable time. *)
let c_parallel_jobs = Dcounter.make ()
let c_serial_jobs = Dcounter.make ()
let c_tasks = Dcounter.make ()
let c_chunks = Dcounter.make ()
let c_steals = Dcounter.make ()
let c_active = Atomic.make 0
let parallel_jobs () = Dcounter.value c_parallel_jobs
let serial_jobs () = Dcounter.value c_serial_jobs
let tasks_dispatched () = Dcounter.value c_tasks
let chunks_dispatched () = Dcounter.value c_chunks
let steals () = Dcounter.value c_steals
let active_domains () = Atomic.get c_active

type instrument = name:string -> total:int -> (unit -> unit) -> unit

let instrument : instrument ref = ref (fun ~name:_ ~total:_ f -> f ())
let set_instrument i = instrument := i

(* --- chunk policy --------------------------------------------------- *)

(* Deal ~4 chunks per domain: coarse enough that a chunk claim costs one
   atomic op per many indices, fine enough that the steal loop has slack
   to rebalance when chunk costs are skewed.  Callers with cheaper or
   more uniform work pass an explicit [?chunk]. *)
let default_chunk ~n ~domains =
  max 1 ((n + (4 * domains) - 1) / (4 * domains))

let make_job ~fn ~n ~chunk ~width =
  let total_chunks = (n + chunk - 1) / chunk in
  (* block-deal the chunks: queue [p] owns a contiguous run of chunks,
     so its indices are contiguous too *)
  let base = total_chunks / width and rem = total_chunks mod width in
  let queues =
    Array.init width (fun p ->
      let lo = (p * base) + min p rem in
      let hi = lo + base + (if p < rem then 1 else 0) in
      { q_lo = lo; q_hi = hi; cursor = Atomic.make 0 })
  in
  {
    fn;
    n;
    chunk;
    total_chunks;
    queues;
    completed = Atomic.make 0;
    failed = None;
  }

(* --- job execution -------------------------------------------------- *)

let run_chunk pool job c =
  let lo = c * job.chunk in
  let hi = min job.n ((c + 1) * job.chunk) in
  (match job.failed with
   | Some _ -> ()  (* drain without working once something failed *)
   | None -> (
     try
       for i = lo to hi - 1 do
         job.fn i
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock pool.mutex;
       if job.failed = None then job.failed <- Some (e, bt);
       Mutex.unlock pool.mutex));
  let done_before = Atomic.fetch_and_add job.completed 1 in
  if done_before + 1 = job.total_chunks then begin
    Mutex.lock pool.mutex;
    Condition.broadcast pool.done_cv;
    Mutex.unlock pool.mutex
  end

let claim job q =
  let queue = job.queues.(q) in
  let i = Atomic.fetch_and_add queue.cursor 1 in
  let c = queue.q_lo + i in
  if c < queue.q_hi then Some c else None

(* Participant [me] drains its own queue, then scans the others for
   leftovers.  The scan keeps claiming from a victim until it is dry,
   then moves on; it terminates when a full circle finds every queue
   empty (chunks still in flight belong to other participants). *)
let execute pool job ~me =
  let flag = Domain.DLS.get busy_key in
  let saved = !flag in
  flag := true;
  let width = Array.length job.queues in
  let rec own () =
    match claim job me with
    | Some c ->
      run_chunk pool job c;
      own ()
    | None -> steal ((me + 1) mod width) 1
  and steal q tried =
    if tried > width - 1 then ()
    else
      match claim job q with
      | Some c ->
        Dcounter.incr c_steals;
        run_chunk pool job c;
        steal q tried  (* keep draining this victim *)
      | None -> steal ((q + 1) mod width) (tried + 1)
  in
  Atomic.incr c_active;
  Fun.protect
    ~finally:(fun () -> Atomic.decr c_active)
    (fun () -> !instrument ~name:"pool.run" ~total:job.n own);
  flag := saved

let worker_loop pool ~me =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock pool.mutex;
    while pool.generation = !seen && not pool.stop do
      Condition.wait pool.work_cv pool.mutex
    done;
    if pool.stop then Mutex.unlock pool.mutex
    else begin
      seen := pool.generation;
      let job = pool.job in
      Mutex.unlock pool.mutex;
      (match job with Some j -> execute pool j ~me | None -> ());
      loop ()
    end
  in
  loop ()

let create ~domains:width =
  if width < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let pool =
    {
      width;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      submit_m = Mutex.create ();
      job = None;
      generation = 0;
      stop = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (width - 1) (fun i ->
      (* participant 0 is the submitting domain *)
      Domain.spawn (fun () -> worker_loop pool ~me:(i + 1)));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  let workers = pool.workers in
  pool.workers <- [];
  pool.stop <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers

let serial_for ~n f =
  for i = 0 to n - 1 do
    f i
  done

let parallel_for ?chunk pool ~n f =
  (* [stop] only ever flips false -> true, so this unlocked read is a
     best-effort gate: a submission racing shutdown may still slip
     through, in which case the submitting domain drains every chunk
     itself (the steal loop needs no workers) — never a hang.  Anything
     arriving after is the typed error a long-lived server maps to a
     per-session failure instead of dying. *)
  if pool.stop then raise Shut_down;
  if n <= 0 then ()
  else begin
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Pool.parallel_for: chunk must be >= 1"
      | None -> default_chunk ~n ~domains:pool.width
    in
    if pool.width = 1 || n <= chunk || busy () then begin
      Dcounter.incr c_serial_jobs;
      Dcounter.add c_tasks n;
      serial_for ~n f
    end
    else begin
      Dcounter.incr c_parallel_jobs;
      Dcounter.add c_tasks n;
      !instrument ~name:"pool.job" ~total:n (fun () ->
      Mutex.lock pool.submit_m;
      let job = make_job ~fn:f ~n ~chunk ~width:pool.width in
      Dcounter.add c_chunks job.total_chunks;
      Mutex.lock pool.mutex;
      pool.job <- Some job;
      pool.generation <- pool.generation + 1;
      Condition.broadcast pool.work_cv;
      Mutex.unlock pool.mutex;
      execute pool job ~me:0;
      Mutex.lock pool.mutex;
      while Atomic.get job.completed < job.total_chunks do
        Condition.wait pool.done_cv pool.mutex
      done;
      pool.job <- None;
      Mutex.unlock pool.mutex;
      Mutex.unlock pool.submit_m;
      match job.failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ())
    end
  end

let map ?(chunk = 1) pool f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    parallel_for ~chunk pool ~n (fun i -> out.(i) <- Some (f arr.(i)));
    Array.map
      (function Some v -> v | None -> assert false (* every slot filled *))
      out
  end

let map_list ?chunk pool f l = Array.to_list (map ?chunk pool f (Array.of_list l))

(* --- default pool -------------------------------------------------- *)

let recommended_domains () = Domain.recommended_domain_count ()

let default_m = Mutex.create ()
let default_pool = ref None
let default_width = ref None
let at_exit_installed = ref false

let default () =
  Mutex.lock default_m;
  let pool =
    match !default_pool with
    | Some p -> p
    | None ->
      let width =
        match !default_width with
        | Some w -> w
        | None -> recommended_domains ()
      in
      let p = create ~domains:width in
      default_pool := Some p;
      if not !at_exit_installed then begin
        at_exit_installed := true;
        at_exit (fun () ->
          Mutex.lock default_m;
          let p = !default_pool in
          default_pool := None;
          Mutex.unlock default_m;
          Option.iter shutdown p)
      end;
      p
  in
  Mutex.unlock default_m;
  pool

let set_default_domains width =
  if width < 1 then invalid_arg "Pool.set_default_domains: domains must be >= 1";
  Mutex.lock default_m;
  let previous =
    match !default_pool with
    | Some p when p.width <> width ->
      default_pool := None;
      Some p
    | _ -> None
  in
  default_width := Some width;
  Mutex.unlock default_m;
  Option.iter shutdown previous
