(** A domain-safe sharded memoization cache.

    Keys are spread over [N] independent {!Hashtbl} shards, each guarded
    by its own mutex, so concurrent lookups from a {!Pool} job mostly
    touch different locks.  A computation in flight is visible to other
    domains as a [Pending] entry: a second request for the same key
    blocks on the shard's condition variable instead of duplicating the
    work — exactly one transient analysis ever runs per distinct query.

    If the computing domain raises, the pending entry is removed (counted
    as an eviction), all waiters retry (and typically re-raise from their
    own attempt), and the exception propagates to every caller.

    The computation must not re-enter the cache with the same key from
    the same domain — that would self-deadlock on the pending entry. *)

type ('k, 'v) t

val create : ?shards:int -> ?local:bool -> unit -> ('k, 'v) t
(** [create ()] makes an empty cache with [shards] shards (default 16;
    clamped to at least 1).  Keys use polymorphic [Hashtbl.hash] and
    structural equality, like the plain [Hashtbl] memoization this
    replaces.

    [~local:true] adds a warm path: each domain keeps an unsynchronized
    read-through replica of the completed entries it has seen, so
    repeated queries from a hot parallel loop are answered without
    touching a mutex or a shared cache line.  The replica only ever
    holds values that the shared tier completed — failed computations
    are cached in neither tier — so it cannot diverge.  Use it for
    caches whose values are immutable and re-queried many times per
    domain (model factories during characterization); skip it for
    caches queried about once per key. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute cache key f] returns the cached value for [key],
    waiting out another domain's in-flight computation if there is one,
    or runs [f ()] and caches its result. *)

val mem : ('k, 'v) t -> 'k -> bool
(** [mem cache key] is true iff a completed value for [key] is cached.
    Does not block on pending computations and does not touch the
    hit/miss counters. *)

val length : ('k, 'v) t -> int
(** Number of completed entries across all shards. *)

type stats = {
  hits : int;  (** queries answered from a completed entry without
                   blocking *)
  misses : int;  (** computations actually started *)
  waits : int;  (** queries answered only after blocking on another
                    domain's in-flight computation *)
  evictions : int;  (** entries removed because their computation
                        raised *)
  entries : int;  (** completed entries currently stored *)
  local_hits : int;  (** queries answered from the caller's domain-local
                         replica ([~local:true] caches only); counted on
                         a contention-free {!Dcounter}, so this field is
                         approximate while domains are actively querying *)
}
(** The shard counters are updated under the owning shard's lock, so a
    sample is internally consistent: [hits + misses + waits] is exactly
    the number of completed shared-tier {!find_or_compute} calls at the
    sampling instant.  [local_hits] come on top: a warm-path answer
    touches no shard and appears in no other counter. *)

val stats : ('k, 'v) t -> stats

val reset_stats : ('k, 'v) t -> unit
(** Zero the counters, including [local_hits] ([entries] is
    unaffected). *)

(** Process-wide totals across every cache in the process, mirrored on
    contention-free per-domain counters ({!Dcounter}).  The observability
    layer registers these as the [cache.*] registry counters. *)
module Global : sig
  val hits : unit -> int
  val misses : unit -> int
  val waits : unit -> int
  val evictions : unit -> int
  val local_hits : unit -> int
  val reset : unit -> unit
end
