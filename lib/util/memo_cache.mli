(** A domain-safe sharded memoization cache.

    Keys are spread over [N] independent {!Hashtbl} shards, each guarded
    by its own mutex, so concurrent lookups from a {!Pool} job mostly
    touch different locks.  A computation in flight is visible to other
    domains as a [Pending] entry: a second request for the same key
    blocks on the shard's condition variable instead of duplicating the
    work — exactly one transient analysis ever runs per distinct query.

    If the computing domain raises, the pending entry is removed (counted
    as an eviction), all waiters retry (and typically re-raise from their
    own attempt), and the exception propagates to every caller.

    The computation must not re-enter the cache with the same key from
    the same domain — that would self-deadlock on the pending entry. *)

type ('k, 'v) t

val create : ?shards:int -> unit -> ('k, 'v) t
(** [create ()] makes an empty cache with [shards] shards (default 16;
    clamped to at least 1).  Keys use polymorphic [Hashtbl.hash] and
    structural equality, like the plain [Hashtbl] memoization this
    replaces. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute cache key f] returns the cached value for [key],
    waiting out another domain's in-flight computation if there is one,
    or runs [f ()] and caches its result. *)

val mem : ('k, 'v) t -> 'k -> bool
(** [mem cache key] is true iff a completed value for [key] is cached.
    Does not block on pending computations and does not touch the
    hit/miss counters. *)

val length : ('k, 'v) t -> int
(** Number of completed entries across all shards. *)

type stats = {
  hits : int;  (** queries answered from a completed entry without
                   blocking *)
  misses : int;  (** computations actually started *)
  waits : int;  (** queries answered only after blocking on another
                    domain's in-flight computation *)
  evictions : int;  (** entries removed because their computation
                        raised *)
  entries : int;  (** completed entries currently stored *)
}
(** Counters are updated under the owning shard's lock, so a sample is
    internally consistent: [hits + misses + waits] is exactly the number
    of completed {!find_or_compute} calls at the sampling instant. *)

val stats : ('k, 'v) t -> stats

val reset_stats : ('k, 'v) t -> unit
(** Zero the counters ([entries] is unaffected). *)

(** Process-wide totals across every cache in the process, mirrored on
    contention-free per-domain counters ({!Dcounter}).  The observability
    layer registers these as the [cache.*] registry counters. *)
module Global : sig
  val hits : unit -> int
  val misses : unit -> int
  val waits : unit -> int
  val evictions : unit -> int
  val reset : unit -> unit
end
