(** A domain-safe sharded memoization cache.

    Keys are spread over [N] independent {!Hashtbl} shards, each guarded
    by its own mutex, so concurrent lookups from a {!Pool} job mostly
    touch different locks.  A computation in flight is visible to other
    domains as a [Pending] entry: a second request for the same key
    blocks on the shard's condition variable instead of duplicating the
    work — exactly one transient analysis ever runs per distinct query.

    If the computing domain raises, the pending entry is removed, all
    waiters retry (and typically re-raise from their own attempt), and
    the exception propagates to every caller.

    The computation must not re-enter the cache with the same key from
    the same domain — that would self-deadlock on the pending entry. *)

type ('k, 'v) t

val create : ?shards:int -> unit -> ('k, 'v) t
(** [create ()] makes an empty cache with [shards] shards (default 16;
    clamped to at least 1).  Keys use polymorphic [Hashtbl.hash] and
    structural equality, like the plain [Hashtbl] memoization this
    replaces. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_compute cache key f] returns the cached value for [key],
    waiting out another domain's in-flight computation if there is one,
    or runs [f ()] and caches its result. *)

val mem : ('k, 'v) t -> 'k -> bool
(** [mem cache key] is true iff a completed value for [key] is cached.
    Does not block on pending computations and does not touch the
    hit/miss counters. *)

val length : ('k, 'v) t -> int
(** Number of completed entries across all shards. *)

type stats = {
  hits : int;  (** queries answered from the cache, including waits on
                   another domain's in-flight computation *)
  misses : int;  (** computations actually started *)
  entries : int;  (** completed entries currently stored *)
}

val stats : ('k, 'v) t -> stats

val reset_stats : ('k, 'v) t -> unit
(** Zero the hit/miss counters ([entries] is unaffected). *)
