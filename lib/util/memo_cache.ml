type 'v entry = Done of 'v | Pending

type ('k, 'v) shard = {
  mutex : Mutex.t;
  cond : Condition.t;  (** signalled when a [Pending] entry resolves *)
  tbl : ('k, 'v entry) Hashtbl.t;
}

type ('k, 'v) t = {
  shards : ('k, 'v) shard array;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(shards = 16) () =
  let shards = max 1 shards in
  {
    shards =
      Array.init shards (fun _ ->
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          tbl = Hashtbl.create 32;
        });
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find_or_compute t key f =
  let shard = shard_of t key in
  Mutex.lock shard.mutex;
  let rec acquire () =
    match Hashtbl.find_opt shard.tbl key with
    | Some (Done v) ->
      Mutex.unlock shard.mutex;
      Atomic.incr t.hits;
      v
    | Some Pending ->
      Condition.wait shard.cond shard.mutex;
      acquire ()
    | None ->
      Hashtbl.replace shard.tbl key Pending;
      Mutex.unlock shard.mutex;
      Atomic.incr t.misses;
      let result =
        try Ok (f ())
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock shard.mutex;
      (match result with
       | Ok v -> Hashtbl.replace shard.tbl key (Done v)
       | Error _ -> Hashtbl.remove shard.tbl key);
      Condition.broadcast shard.cond;
      Mutex.unlock shard.mutex;
      (match result with
       | Ok v -> v
       | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
  in
  acquire ()

let mem t key =
  let shard = shard_of t key in
  Mutex.lock shard.mutex;
  let found =
    match Hashtbl.find_opt shard.tbl key with
    | Some (Done _) -> true
    | Some Pending | None -> false
  in
  Mutex.unlock shard.mutex;
  found

let length t =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.mutex;
      let n =
        Hashtbl.fold
          (fun _ entry acc ->
            match entry with Done _ -> acc + 1 | Pending -> acc)
          shard.tbl 0
      in
      Mutex.unlock shard.mutex;
      acc + n)
    0 t.shards

type stats = { hits : int; misses : int; entries : int }

let stats (t : _ t) =
  { hits = Atomic.get t.hits; misses = Atomic.get t.misses; entries = length t }

let reset_stats (t : _ t) =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0
