type 'v entry = Done of 'v | Pending

type ('k, 'v) shard = {
  mutex : Mutex.t;
  cond : Condition.t;  (** signalled when a [Pending] entry resolves *)
  tbl : ('k, 'v entry) Hashtbl.t;
  (* counters live in the shard and are only touched under [mutex], so a
     [stats] sample is consistent with the table contents it observes *)
  mutable hits : int;
  mutable misses : int;
  mutable waits : int;
  mutable evictions : int;
}

type ('k, 'v) t = {
  shards : ('k, 'v) shard array;
  (* the warm path: an unsynchronized per-domain read-through replica of
     completed entries.  A local hit touches no mutex and no shared
     cache line, so repeated queries from a hot parallel loop stop
     contending on the shards. *)
  local : ('k, 'v) Hashtbl.t Domain.DLS.key option;
  local_hits : Dcounter.t;
}

(* Process-wide mirrors across every cache, for the observability
   registry (individual caches are not enumerable from outside). *)
module Global = struct
  let g_hits = Dcounter.make ()
  let g_misses = Dcounter.make ()
  let g_waits = Dcounter.make ()
  let g_evictions = Dcounter.make ()
  let g_local_hits = Dcounter.make ()
  let hits () = Dcounter.value g_hits
  let misses () = Dcounter.value g_misses
  let waits () = Dcounter.value g_waits
  let evictions () = Dcounter.value g_evictions
  let local_hits () = Dcounter.value g_local_hits

  let reset () =
    Dcounter.reset g_hits;
    Dcounter.reset g_misses;
    Dcounter.reset g_waits;
    Dcounter.reset g_evictions;
    Dcounter.reset g_local_hits
end

let create ?(shards = 16) ?(local = false) () =
  let shards = max 1 shards in
  {
    shards =
      Array.init shards (fun _ ->
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          tbl = Hashtbl.create 32;
          hits = 0;
          misses = 0;
          waits = 0;
          evictions = 0;
        });
    local =
      (if local then Some (Domain.DLS.new_key (fun () -> Hashtbl.create 32))
       else None);
    local_hits = Dcounter.make ();
  }

let shard_of t key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

let find_or_compute_shared t key f =
  let shard = shard_of t key in
  Mutex.lock shard.mutex;
  let rec acquire ~waited =
    match Hashtbl.find_opt shard.tbl key with
    | Some (Done v) ->
      if waited then begin
        shard.waits <- shard.waits + 1;
        Dcounter.incr Global.g_waits
      end
      else begin
        shard.hits <- shard.hits + 1;
        Dcounter.incr Global.g_hits
      end;
      Mutex.unlock shard.mutex;
      v
    | Some Pending ->
      Condition.wait shard.cond shard.mutex;
      acquire ~waited:true
    | None ->
      (* a waiter woken to find the entry gone (the computer failed)
         becomes a computer itself, and is counted as the miss it is *)
      Hashtbl.replace shard.tbl key Pending;
      shard.misses <- shard.misses + 1;
      Dcounter.incr Global.g_misses;
      Mutex.unlock shard.mutex;
      let result =
        try Ok (f ())
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock shard.mutex;
      (match result with
       | Ok v -> Hashtbl.replace shard.tbl key (Done v)
       | Error _ ->
         Hashtbl.remove shard.tbl key;
         shard.evictions <- shard.evictions + 1;
         Dcounter.incr Global.g_evictions);
      Condition.broadcast shard.cond;
      Mutex.unlock shard.mutex;
      (match result with
       | Ok v -> v
       | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
  in
  acquire ~waited:false

let find_or_compute t key f =
  match t.local with
  | None -> find_or_compute_shared t key f
  | Some dls ->
    let l1 = Domain.DLS.get dls in
    (match Hashtbl.find_opt l1 key with
     | Some v ->
       Dcounter.incr t.local_hits;
       Dcounter.incr Global.g_local_hits;
       v
     | None ->
       (* only completed values reach the replica, so a failed
          computation stays uncached in both tiers *)
       let v = find_or_compute_shared t key f in
       Hashtbl.replace l1 key v;
       v)

let mem t key =
  let shard = shard_of t key in
  Mutex.lock shard.mutex;
  let found =
    match Hashtbl.find_opt shard.tbl key with
    | Some (Done _) -> true
    | Some Pending | None -> false
  in
  Mutex.unlock shard.mutex;
  found

type stats = {
  hits : int;
  misses : int;
  waits : int;
  evictions : int;
  entries : int;
  local_hits : int;
}

let stats (t : _ t) =
  Array.fold_left
    (fun acc shard ->
      Mutex.lock shard.mutex;
      let entries =
        Hashtbl.fold
          (fun _ entry acc ->
            match entry with Done _ -> acc + 1 | Pending -> acc)
          shard.tbl 0
      in
      let acc =
        {
          hits = acc.hits + shard.hits;
          misses = acc.misses + shard.misses;
          waits = acc.waits + shard.waits;
          evictions = acc.evictions + shard.evictions;
          entries = acc.entries + entries;
          local_hits = acc.local_hits;
        }
      in
      Mutex.unlock shard.mutex;
      acc)
    {
      hits = 0;
      misses = 0;
      waits = 0;
      evictions = 0;
      entries = 0;
      local_hits = Dcounter.value t.local_hits;
    }
    t.shards

let length t = (stats t).entries

let reset_stats (t : _ t) =
  Array.iter
    (fun shard ->
      Mutex.lock shard.mutex;
      shard.hits <- 0;
      shard.misses <- 0;
      shard.waits <- 0;
      shard.evictions <- 0;
      Mutex.unlock shard.mutex)
    t.shards;
  Dcounter.reset t.local_hits
