(** A domain-distributed counter: contention-free increments, merged reads.

    Each domain increments a private cell (held in domain-local storage),
    so hot-path {!incr} never takes a lock or bounces a cache line between
    domains.  {!value} sums the cells; the result is a consistent total
    once the incrementing domains have quiesced, and a best-effort
    snapshot while they are still running (individual cell reads are
    atomic — no torn values — but the sum may lag in-flight increments).

    Cells of terminated domains stay registered, so their counts are
    never lost.  This is the primitive behind the observability layer's
    metric counters and the instrumentation counters inside {!Pool},
    {!Memo_cache} and {!Interp}. *)

type t

val make : unit -> t
(** A fresh counter at zero. *)

val incr : t -> unit
(** Add one to the calling domain's cell. *)

val add : t -> int -> unit
(** Add [n] to the calling domain's cell. *)

val value : t -> int
(** Sum of all domains' cells. *)

val reset : t -> unit
(** Zero every registered cell.  Racing increments on other domains may
    survive the reset; quiesce first for an exact zero. *)
