(** Static verification of proximity-delay analyses by interval abstract
    interpretation over the timing-graph IR.

    Where {!Proxim_sta.Sta} propagates one concrete event per net, this
    module propagates {e intervals} of arrival times and transition
    times: each primary input carries an uncertainty window (default
    ±0), and every derived quantity — single-input would-be responses,
    dominance separations, cumulative proximity delays, composed output
    transitions — is bounded conservatively using the sampled interval
    images of the macromodels
    ({!Proxim_macromodel.Models.delay1_bounds} and friends).

    Three products fall out of one topological pass:

    - {b Reachability}: a sound arrival/slew interval per switching net
      ({!net_arrival}) — every concrete STA whose primary-input events
      stay inside their windows lands inside these bounds.
    - {b Classification}: each switching multi-input cell, and each
      ordered pair of its switching inputs, is classified
      {!Never_proximate} / {!Always_proximate} / {!May_be_proximate}
      against the paper's proximity window ([Delta^(1) + tau_out^(1)] of
      the dominant input) and dominance crossover
      [s_ab = Delta_a - Delta_b].  The never-proximate verdicts justify
      {!prune_mask}.
    - {b Diagnostics}: {!check} renders the PX3xx verification findings
      ({!Proxim_lint.Diagnostic.PX301}..[PX304]) the same way
      [Proxim_lint] renders its static netlist findings.

    The abstract transfer functions are exact on degenerate (±0-window)
    inputs — in that case the proximity transfer simply runs
    {!Proxim_core.Proximity.evaluate}, so the interval analysis
    reproduces the concrete STA bit-for-bit. *)

(** {1 Inputs} *)

type pi_event = {
  ev_net : string;
  ev_edge : Proxim_measure.Measure.edge;
  ev_time : Interval.t;  (** threshold-crossing time window, s *)
  ev_tau : Interval.t;  (** full-swing transition-time window, s *)
}

val of_sta_event :
  ?time_window:float ->
  ?tau_window:float ->
  string * Proxim_sta.Sta.arrival ->
  pi_event
(** Widen a concrete primary-input event into an interval event:
    [time ± time_window] and [slew ± tau_window] (both default [0.]; the
    slew interval is floored at a tiny positive value).  Raises
    [Invalid_argument] on a negative window. *)

exception Unknown_window_net of { net : string }
(** A window spec ([--pi-window NET=PS]) named something that is not a
    primary-input net of the design — a user typo the CLI maps to exit
    status 2.  A printer is registered. *)

val validate_window_nets : Proxim_sta.Design.t -> string list -> unit
(** Raise {!Unknown_window_net} on the first name that is not a
    primary-input net (unknown entirely, or driven by a cell).  Shared
    by the [proxim verify] and [proxim hazards] CLI window parsing. *)

(** {1 Results} *)

type aarrival = {
  a_time : Interval.t;
  a_slew : Interval.t;
  a_edge : Proxim_measure.Measure.edge;
}
(** The abstract counterpart of {!Proxim_sta.Sta.arrival}. *)

type classification = Never_proximate | Always_proximate | May_be_proximate
(** Whether a cell (or an input pair) can exercise the dual-macromodel
    proximity path under the given primary-input windows:

    - [Never_proximate]: provably not — every admissible concrete run
      has a unique dominant input whose transition window excludes all
      other inputs, so the §3 fold degenerates to the dominant's
      single-input response.  Sound for pruning.
    - [Always_proximate]: provably yes in every admissible run (e.g. a
      gating-direction cell with two switching inputs, or an assisting
      pair certainly inside the dominant's window).
    - [May_be_proximate]: neither bound could be established. *)

val classification_name : classification -> string
(** ["never-proximate"] / ["always-proximate"] / ["may-be-proximate"]. *)

type pair_info = {
  pr_a : int;  (** pin id of input [a] *)
  pr_b : int;  (** pin id of input [b] *)
  pr_class : classification;
  pr_straddles : bool;
      (** the separation interval straddles the dominance crossover:
          both dominance orders are admissible (the would-be response
          intervals intersect) — the PX301 trigger *)
  pr_separation : Interval.t;  (** [t_b - t_a], s *)
  pr_crossover : Interval.t;  (** [s_ab = Delta_a - Delta_b], s *)
}

type cell_info = {
  ci_name : string;
  ci_gate : string;
  ci_edge : Proxim_measure.Measure.edge;  (** input edge direction *)
  ci_switching : int list;  (** switching input pins, pin order *)
  ci_assist : bool;
      (** the switching inputs assist (earliest-dominant direction) *)
  ci_class : classification;
  ci_pairs : pair_info list;  (** unordered switching input pairs *)
  ci_out : aarrival;
  ci_neg_delay : (int * Interval.t) list;
      (** switching pins whose single-input delay interval dips below
          zero — the PX303 trigger *)
  ci_tau_escape : (int * Interval.t * (float * float)) list;
      (** [(pin, slew interval, characterized tau span)] for reachable
          slews escaping a table-backed model's coverage — the PX302
          trigger *)
}

type t
(** A completed verification: per-net abstract arrivals, per-cell
    classifications, and the quiet-PI sensitivity list. *)

(** {1 Analysis} *)

val analyze :
  ?mode:Proxim_sta.Sta.mode ->
  models:(Proxim_sta.Design.cell -> Proxim_macromodel.Models.t) ->
  thresholds:Proxim_vtc.Vtc.thresholds ->
  Proxim_sta.Design.t ->
  pi:pi_event list ->
  t
(** One topological interval pass (default mode: [Proximity]).  Events
    naming nets unknown to the design are ignored, mirroring
    {!Proxim_sta.Sta.analyze}; events on cell-driven nets raise
    [Invalid_argument], as does [Collapsed] mode (the golden-simulator
    baseline has no interval semantics).  Raises
    {!Proxim_sta.Sta.Mixed_input_edges} like the concrete engines.

    In [Classic] mode the pass bounds the latest single-input response;
    classifications are trivially [Never_proximate] (the mode never
    consults dual models) and {!prune_mask} is constant [false]. *)

val design : t -> Proxim_sta.Design.t
val mode : t -> Proxim_sta.Sta.mode

val net_arrival : t -> net:string -> aarrival option
(** The abstract arrival of a net; [None] for unknown or quiet nets. *)

val cell_info : t -> cell:string -> cell_info option
(** Per-cell verdict; [None] for unknown or non-switching cells. *)

val cells : t -> cell_info list
(** Every switching cell's verdict, topological order. *)

val unconstrained_pis : t -> string list
(** Primary inputs that carry no event but feed a switching multi-input
    cell — the PX304 trigger (the analysis assumed them quiet). *)

type summary = {
  total_cells : int;
  switching_cells : int;
  never : int;
  always : int;
  may : int;
}

val summary : t -> summary
(** Classification counts over the switching cells. *)

(** {1 Consumers} *)

val prune_mask : t -> Proxim_sta.Design.cell -> bool
(** The never-proximate mask for {!Proxim_sta.Sta.analyze}'s [?prune]:
    [true] exactly for cells classified {!Never_proximate} by a
    [Proximity]-mode verification (constant [false] for other modes).
    Only valid while every primary-input event stays inside the windows
    {!analyze} was run with.  Always computed from the {e timing-pass}
    classifications: {!refine} never widens this mask, because the STA
    fast path is bit-identical only for cells whose §3 fold provably
    degenerates on timing grounds — a logic-refined Never is a false
    path, not a degenerate fold. *)

type refinement = { refined_pairs : int; refined_cells : int }
(** How many pair / cell verdicts a {!refine} pass converted to
    {!Never_proximate} — the May-to-Never conversion rate's numerator. *)

val refine :
  t ->
  unsensitizable:(cell:string -> a:int -> b:int -> bool) ->
  t * refinement
(** Sharpen the classifications with a static-sensitization oracle
    (see [Proxim_sense]): a pair the oracle proves can never have both
    pins switching under any consistent logic assignment is converted to
    {!Never_proximate}; a cell all of whose pairs become never-proximate
    follows, and an [Always_proximate] verdict resting on a dead pair
    weakens to {!May_be_proximate}.  Reporting ({!cells}, {!summary},
    {!check}) reflects the refined verdicts; {!prune_mask} deliberately
    does not (see there). *)

val abstract_response :
  mode:Proxim_sta.Sta.mode ->
  Proxim_macromodel.Models.t ->
  slew_scale:float ->
  edge:Proxim_measure.Measure.edge ->
  (int * aarrival) list ->
  aarrival
(** Sound abstract image of one cell's response to a same-edge group of
    switching inputs ([(pin, arrival)] pairs): the latest single-input
    response bound in [Classic] mode, the §3-§4 fold bound in
    [Proximity] mode (exact — the concrete algorithm — on degenerate
    inputs).  This is the transfer function {!analyze} applies per cell,
    exported for the hazard analyzer ([Proxim_hazard]), whose mixed-edge
    dataflow decomposes each cell into same-edge groups.  Raises
    [Invalid_argument] on an empty group. *)

val check : ?file:string -> t -> Proxim_lint.Diagnostic.t list
(** Render the verification findings as sorted PX3xx diagnostics:
    [PX301] per straddling non-never pair, [PX302] per tau-coverage
    escape, [PX303] per negative-delay bound, [PX304] per sensitive
    quiet primary input. *)
