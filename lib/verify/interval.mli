(** Closed floating-point intervals [[lo, hi]] — the abstract values of
    the {!Verify} interpreter.

    All operations are outward-conservative under real arithmetic (no
    directed rounding: the sub-ulp rounding of [+.]/[*.] is absorbed by
    the sampling safety margins of
    {!Proxim_macromodel.Models.delay1_bounds} and friends, which dominate
    by many orders of magnitude). *)

type t = private { lo : float; hi : float }

val make : float -> float -> t
(** [make lo hi]; raises [Invalid_argument] when [lo > hi] or either
    bound is NaN. *)

val exact : float -> t
(** The degenerate interval [[v, v]]. *)

val of_pair : float * float -> t
val pair : t -> float * float
val lo : t -> float
val hi : t -> float

val width : t -> float
val degenerate : t -> bool
(** [width i = 0.] — a single point; abstract operations on degenerate
    inputs stay exact. *)

val contains : t -> float -> bool
val subset : t -> t -> bool
(** [subset a b]: [a] lies entirely inside [b]. *)

val intersects : t -> t -> bool

val hull : t -> t -> t
val hull0 : t -> t
(** [hull0 a = hull a (exact 0.)] — the "contributed or not" envelope of
    a prefix-sum term. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : float -> t -> t

val max2 : t -> t -> t
(** Interval image of [Stdlib.max]: [[max lo lo', max hi hi']]. *)

val clamp_lo : float -> t -> t
(** Raise both bounds to at least the given floor (e.g. keep a slew
    interval positive before inversion). *)

val inv : t -> t
(** [1/x] for a strictly positive interval; raises [Invalid_argument]
    when [lo <= 0.]. *)

val to_string : t -> string
(** ["[lo, hi]"] with %g bounds, or ["{v}"] when degenerate. *)
