module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Gate = Proxim_gates.Gate
module Vtc = Proxim_vtc.Vtc
module Proximity = Proxim_core.Proximity
module Graph = Proxim_timing.Graph
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Diagnostic = Proxim_lint.Diagnostic
module Trace = Proxim_obs.Trace
module Metrics = Proxim_obs.Metrics

(* one count per fixpoint round that actually grew a hull *)
let c_widenings = Metrics.Counter.v "verify.fixpoint_widenings"

(* --- inputs ----------------------------------------------------------- *)

type pi_event = {
  ev_net : string;
  ev_edge : Measure.edge;
  ev_time : Interval.t;
  ev_tau : Interval.t;
}

let tiny_slew = 1e-15

exception Unknown_window_net of { net : string }

let () =
  Printexc.register_printer (function
    | Unknown_window_net { net } ->
      Some
        (Printf.sprintf
           "Verify.Unknown_window_net: --pi-window names %S, which is not a \
            primary input of the design" net)
    | _ -> None)

let validate_window_nets design nets =
  let g = Design.graph design in
  let is_pi net =
    match Graph.net_id g net with
    | None -> false
    | Some id -> Graph.driver g ~net:id = None
  in
  List.iter
    (fun net -> if not (is_pi net) then raise (Unknown_window_net { net }))
    nets

let of_sta_event ?(time_window = 0.) ?(tau_window = 0.) (net, (a : Sta.arrival))
    =
  if time_window < 0. || tau_window < 0. then
    invalid_arg "Verify.of_sta_event: negative window";
  {
    ev_net = net;
    ev_edge = a.Sta.edge;
    ev_time = Interval.make (a.Sta.time -. time_window) (a.Sta.time +. time_window);
    ev_tau =
      Interval.make
        (max tiny_slew (a.Sta.slew -. tau_window))
        (max tiny_slew (a.Sta.slew +. tau_window));
  }

(* --- results ----------------------------------------------------------- *)

type aarrival = {
  a_time : Interval.t;
  a_slew : Interval.t;
  a_edge : Measure.edge;
}

type classification = Never_proximate | Always_proximate | May_be_proximate

let classification_name = function
  | Never_proximate -> "never-proximate"
  | Always_proximate -> "always-proximate"
  | May_be_proximate -> "may-be-proximate"

type pair_info = {
  pr_a : int;
  pr_b : int;
  pr_class : classification;
  pr_straddles : bool;
  pr_separation : Interval.t;  (** t_b - t_a *)
  pr_crossover : Interval.t;  (** Delta_a - Delta_b *)
}

type cell_info = {
  ci_name : string;
  ci_gate : string;
  ci_edge : Measure.edge;
  ci_switching : int list;
  ci_assist : bool;
  ci_class : classification;
  ci_pairs : pair_info list;
  ci_out : aarrival;
  ci_neg_delay : (int * Interval.t) list;
      (** switching pins whose single-input delay bound dips negative *)
  ci_tau_escape : (int * Interval.t * (float * float)) list;
      (** switching pins whose slew interval escapes the characterized
          tau span of a table-backed model *)
}

type t = {
  v_design : Design.t;
  v_mode : Sta.mode;
  v_arrivals : aarrival option array;
  v_cells : cell_info option array;
  v_timing_cells : cell_info option array;
      (** the classifications as the interval pass computed them, before
          any logic refinement — the ones {!prune_mask} may trust (the
          STA fast path is only bit-identical for timing-proven
          never-proximate cells) *)
  v_unconstrained : string list;
      (** quiet primary inputs whose fanout cone contains a switching
          multi-input cell *)
}

(* --- abstract transfer: shared ----------------------------------------- *)

(* per switching input of a cell *)
type ainput = {
  i_pin : int;
  i_time : Interval.t;
  i_tau : Interval.t;
  i_d1 : Interval.t;
  i_t1 : Interval.t;
  i_wb : Interval.t;  (** would-be response: time + d1 *)
}

let slew_cap = 1e-6
(* far above any reachable slew (concrete values are < ns scale): the
   finite stand-in for "unbounded above" when a rate interval loses
   positivity, so downstream arithmetic stays finite *)

let trans_of_rate r =
  if Interval.lo r > 0. then Interval.inv r
  else if Interval.hi r > 0. then
    Interval.make (1. /. Interval.hi r) slew_cap
  else Interval.make tiny_slew slew_cap

let ainput_of (m : Models.t) ~edge (pin, (a : aarrival)) =
  let tau = Interval.pair a.a_slew in
  let d1 = Interval.of_pair (Models.delay1_bounds m ~pin ~edge ~tau) in
  let t1 = Interval.of_pair (Models.trans1_bounds m ~pin ~edge ~tau) in
  {
    i_pin = pin;
    i_time = a.a_time;
    i_tau = a.a_slew;
    i_d1 = d1;
    i_t1 = t1;
    i_wb = Interval.add a.a_time d1;
  }

(* --- classic mode ------------------------------------------------------- *)

(* latest single-input response wins; slew hull over every input whose
   would-be can reach the maximum *)
let classic_out ~slew_scale ~edge inputs =
  let out_time =
    List.fold_left
      (fun acc i -> Interval.max2 acc i.i_wb)
      (List.hd inputs).i_wb (List.tl inputs)
  in
  let max_lo =
    List.fold_left (fun acc i -> max acc (Interval.lo i.i_wb)) neg_infinity
      inputs
  in
  let out_slew =
    List.filter (fun i -> Interval.hi i.i_wb >= max_lo) inputs
    |> List.map (fun i -> i.i_t1)
    |> function
    | [] -> assert false
    | s :: tl -> List.fold_left Interval.hull s tl
  in
  {
    a_time = out_time;
    a_slew = Interval.scale slew_scale out_slew;
    a_edge = Measure.opposite edge;
  }

(* --- proximity mode ----------------------------------------------------- *)

(* Abstract image of the Fig 4-1 fold with [yd] dominant (§3-§4):

   The concrete fold threads a cumulative delay [d_cum] (started at the
   dominant's Delta^(1)) and transition [t_cum] through the other inputs
   in dominance order, testing each against the current transition
   window and querying the dual models at the equivalent separation
   [s* = s + Delta_ref - d_cum].  The processing order is not static
   under intervals, so instead of simulating one order we bound the
   whole trajectory:

   - each other input's contribution is bounded as an interval, with the
     branch (skipped / transition-only / full) resolved three-way
     against the current global [d_cum]/[t_cum] hulls;
   - any intermediate concrete [d_cum] is the reference delay plus a
     sub-multiset of those contributions, so the running hull is the sum
     of every contribution hulled with 0 (prefix-sum bound) — and in
     rate space ([1/t]) the transition composition is additive too, so
     [t_cum] gets the identical treatment;
   - the window tests and [s*] depend on those hulls, so we iterate to a
     fixpoint (the hulls only grow; the dual-model influence saturates
     outside the proximity window, so growth stalls after a couple of
     rounds; a safety cap bounds the loop).

   The final output applies {e every} contribution (each one's branch
   uncertainty is already inside its interval), which is tighter than
   the running hull.  When every input interval is degenerate each
   branch test is definite and every box is a point, so the result is
   exact. *)
let fold_abstract (m : Models.t) ~edge ~assist yd others =
  let d1_ref = yd.i_d1 in
  let t1_ref_pos = Interval.clamp_lo tiny_slew yd.i_t1 in
  let inv_t1ref = Interval.inv t1_ref_pos in
  let contributions d_hull rate_hull =
    List.map
      (fun yj ->
        let s = Interval.sub yj.i_time yd.i_time in
        let t_hull = trans_of_rate rate_hull in
        let sum_dt = Interval.add d_hull t_hull in
        if assist && Interval.lo s >= Interval.hi sum_dt then
          (Interval.exact 0., Interval.exact 0.)
        else begin
          let may_skip = assist && Interval.hi s >= Interval.lo sum_dt in
          let s_star = Interval.add s (Interval.sub d1_ref d_hull) in
          let box =
            ( Interval.pair yd.i_tau,
              Interval.pair yj.i_tau,
              Interval.pair s_star )
          in
          let tau_dom, tau_other, sep = box in
          let t2 =
            Interval.of_pair
              (Models.trans2_bounds m ~dom:yd.i_pin ~other:yj.i_pin ~edge
                 ~tau_dom ~tau_other ~sep)
          in
          let rc =
            Interval.sub (Interval.inv (Interval.clamp_lo tiny_slew t2)) inv_t1ref
          in
          let rc = if may_skip then Interval.hull0 rc else rc in
          let may_delay = (not assist) || Interval.lo s < Interval.hi d_hull in
          let must_delay = (not assist) || Interval.hi s < Interval.lo d_hull in
          let dc =
            if not may_delay then Interval.exact 0.
            else begin
              let d2 =
                Interval.of_pair
                  (Models.delay2_bounds m ~dom:yd.i_pin ~other:yj.i_pin ~edge
                     ~tau_dom ~tau_other ~sep)
              in
              let full = Interval.sub d2 d1_ref in
              if must_delay && not may_skip then full else Interval.hull0 full
            end
          in
          (dc, rc)
        end)
      others
  in
  let running base cs = List.fold_left (fun acc c -> Interval.add acc (Interval.hull0 c)) base cs in
  let rec iterate n d_hull rate_hull =
    let cs = contributions d_hull rate_hull in
    let d' = running d1_ref (List.map fst cs) in
    let r' = running inv_t1ref (List.map snd cs) in
    if n = 0 || (Interval.subset d' d_hull && Interval.subset r' rate_hull)
    then (cs, d_hull, rate_hull)
    else begin
      Metrics.Counter.incr c_widenings;
      iterate (n - 1) (Interval.hull d_hull d') (Interval.hull rate_hull r')
    end
  in
  let cs, _, _ = iterate 12 d1_ref inv_t1ref in
  let delay_out =
    List.fold_left (fun acc (dc, _) -> Interval.add acc dc) d1_ref cs
  in
  let rate_out =
    List.fold_left (fun acc (_, rc) -> Interval.add acc rc) inv_t1ref cs
  in
  (delay_out, trans_of_rate rate_out)

(* the never-proximate lemma: input [i] with every other input provably
   beyond its initial transition window is the unique dominant, and the
   fold reduces to its single-input response.  [t_j - t_i >= D_i + T_i]
   with positive delays/transitions forces [t_j + D_j > t_i + D_i]
   strictly, so no sort-order tie-breaking is involved. *)
let never_dominant inputs =
  let positive i = Interval.lo i.i_d1 > 0. && Interval.lo i.i_t1 > 0. in
  if not (List.for_all positive inputs) then None
  else
    List.find_opt
      (fun i ->
        let wnd = Interval.hi i.i_d1 +. Interval.hi i.i_t1 in
        List.for_all
          (fun j ->
            j.i_pin = i.i_pin
            || Interval.lo j.i_time -. Interval.hi i.i_time >= wnd)
          inputs)
      inputs

let proximity_dominants ~assist inputs =
  if assist then begin
    let min_hi =
      List.fold_left (fun acc i -> min acc (Interval.hi i.i_wb)) infinity
        inputs
    in
    List.filter (fun i -> Interval.lo i.i_wb <= min_hi) inputs
  end
  else begin
    let max_lo =
      List.fold_left (fun acc i -> max acc (Interval.lo i.i_wb)) neg_infinity
        inputs
    in
    List.filter (fun i -> Interval.hi i.i_wb >= max_lo) inputs
  end

let cell_classification ~assist inputs dominants =
  match inputs with
  | [ _ ] -> Never_proximate
  | _ when not assist -> Always_proximate
  | _ -> (
    match never_dominant inputs with
    | Some _ -> Never_proximate
    | None -> (
      match dominants with
      | [ d ] ->
        (* unique dominant with every other input provably inside its
           initial window: the first-tested other is inside for sure,
           so at least one dual query always fires *)
        let definitely_in j =
          j.i_pin = d.i_pin
          || Interval.hi (Interval.sub j.i_time d.i_time)
             < Interval.lo d.i_d1 +. Interval.lo d.i_t1
        in
        if List.for_all definitely_in inputs then Always_proximate
        else May_be_proximate
      | _ -> May_be_proximate))

let pair_classification ~assist ~n_switching dominants a b =
  let sep = Interval.sub b.i_time a.i_time in
  let crossover = Interval.sub a.i_d1 b.i_d1 in
  let straddles = Interval.intersects a.i_wb b.i_wb in
  let is_dom i = List.exists (fun d -> d.i_pin = i.i_pin) dominants in
  let cls =
    if not assist then Always_proximate
    else begin
      let skip_under dom other =
        Interval.lo (Interval.sub other.i_time dom.i_time)
        >= Interval.hi dom.i_d1 +. Interval.hi dom.i_t1
      in
      let in_under dom other =
        Interval.hi (Interval.sub other.i_time dom.i_time)
        < Interval.lo dom.i_d1 +. Interval.lo dom.i_t1
      in
      if
        ((not (is_dom a)) || skip_under a b)
        && ((not (is_dom b)) || skip_under b a)
      then Never_proximate
      else if
        (* only claim certainty on two-input cells, where the pair's
           window test provably runs against the initial state *)
        n_switching = 2
        && ((is_dom a && (not (is_dom b)) && in_under a b)
           || (is_dom b && (not (is_dom a)) && in_under b a)
           || (is_dom a && is_dom b && in_under a b && in_under b a))
      then Always_proximate
      else May_be_proximate
    end
  in
  {
    pr_a = a.i_pin;
    pr_b = b.i_pin;
    pr_class = cls;
    pr_straddles = straddles;
    pr_separation = sep;
    pr_crossover = crossover;
  }

let rec pairs_of = function
  | [] | [ _ ] -> []
  | a :: tl -> List.map (fun b -> (a, b)) tl @ pairs_of tl

let proximity_out (m : Models.t) ~slew_scale ~edge inputs =
  match inputs with
  | [ i ] ->
    {
      a_time = i.i_wb;
      a_slew = Interval.scale slew_scale i.i_t1;
      a_edge = Measure.opposite edge;
    }
  | _ ->
    let all_degenerate =
      List.for_all
        (fun i -> Interval.degenerate i.i_time && Interval.degenerate i.i_tau)
        inputs
    in
    if all_degenerate then begin
      (* exact inputs: run the concrete algorithm itself, so ±0 windows
         reproduce the concrete STA bit-for-bit *)
      let events =
        List.map
          (fun i ->
            {
              Proximity.pin = i.i_pin;
              edge;
              tau = Interval.lo i.i_tau;
              cross_time = Interval.lo i.i_time;
            })
          inputs
      in
      let r = Proximity.evaluate m events in
      {
        a_time = Interval.exact (r.Proximity.ref_cross +. r.Proximity.delay);
        a_slew = Interval.exact (r.Proximity.out_transition *. slew_scale);
        a_edge = Measure.opposite edge;
      }
    end
    else begin
      let assist =
        m.Models.assist ~edge ~pins:(List.map (fun i -> i.i_pin) inputs)
      in
      let dominants = proximity_dominants ~assist inputs in
      let per_dominant =
        List.map
          (fun yd ->
            let others =
              List.filter (fun j -> j.i_pin <> yd.i_pin) inputs
            in
            let delay, trans = fold_abstract m ~edge ~assist yd others in
            (Interval.add yd.i_time delay, trans))
          dominants
      in
      match per_dominant with
      | [] -> assert false
      | (t0, s0) :: tl ->
        let a_time, slew =
          List.fold_left
            (fun (ta, sa) (tb, sb) -> (Interval.hull ta tb, Interval.hull sa sb))
            (t0, s0) tl
        in
        {
          a_time;
          a_slew = Interval.scale slew_scale slew;
          a_edge = Measure.opposite edge;
        }
    end

(* Sound abstract image of one cell response to a same-edge input group,
   shared with the hazard analyzer (Proxim_hazard), whose mixed-edge
   dataflow decomposes each cell into same-edge groups plus the §6
   opposing-pair rule.  Inputs are (pin, abstract arrival) pairs. *)
let abstract_response ~mode (m : Models.t) ~slew_scale ~edge inputs =
  if inputs = [] then invalid_arg "Verify.abstract_response: no inputs";
  let inputs = List.map (ainput_of m ~edge) inputs in
  match mode with
  | Sta.Classic -> classic_out ~slew_scale ~edge inputs
  | Sta.Proximity | Sta.Collapsed _ ->
    proximity_out m ~slew_scale ~edge inputs

(* --- the analysis ------------------------------------------------------- *)

let analyze ?(mode = Sta.Proximity) ~models ~thresholds design ~pi =
  (match mode with
   | Sta.Collapsed _ ->
     invalid_arg "Proxim_verify: Collapsed mode is not supported"
   | Sta.Classic | Sta.Proximity -> ());
  let g = Design.graph design in
  let slew_scale =
    let th : Vtc.thresholds = thresholds in
    th.Vtc.vdd /. (th.Vtc.vih -. th.Vtc.vil)
  in
  let arrivals : aarrival option array = Array.make (Graph.net_count g) None in
  List.iter
    (fun ev ->
      match Graph.net_id g ev.ev_net with
      | None -> () (* events for nets the design never mentions are inert *)
      | Some id ->
        if Graph.driver g ~net:id <> None then
          invalid_arg
            ("Proxim_verify.analyze: net " ^ ev.ev_net ^ " is driven by a cell")
        else
          arrivals.(id) <-
            Some { a_time = ev.ev_time; a_slew = ev.ev_tau; a_edge = ev.ev_edge })
    pi;
  let infos : cell_info option array = Array.make (Graph.cell_count g) None in
  let process c =
    let cell = Graph.payload g c in
    let switching =
      Array.to_list (Graph.cell_inputs g c)
      |> List.mapi (fun pin net ->
           Option.map (fun a -> (pin, a)) arrivals.(net))
      |> List.filter_map Fun.id
    in
    match switching with
    | [] -> ()
    | (_, first) :: rest ->
      if List.exists (fun (_, a) -> a.a_edge <> first.a_edge) rest then
        raise (Sta.Mixed_input_edges { cell = cell.Design.name });
      let edge = first.a_edge in
      let m = models cell in
      let inputs = List.map (ainput_of m ~edge) switching in
      let assist =
        List.length inputs >= 2
        && m.Models.assist ~edge ~pins:(List.map (fun i -> i.i_pin) inputs)
      in
      let out, cls, pairs =
        match mode with
        | Sta.Classic ->
          (classic_out ~slew_scale ~edge inputs, Never_proximate, [])
        | Sta.Proximity | Sta.Collapsed _ ->
          let dominants = proximity_dominants ~assist inputs in
          let n_switching = List.length inputs in
          ( proximity_out m ~slew_scale ~edge inputs,
            cell_classification ~assist inputs dominants,
            List.map
              (fun (a, b) ->
                pair_classification ~assist ~n_switching dominants a b)
              (pairs_of inputs) )
      in
      let neg_delay =
        List.filter_map
          (fun i ->
            if Interval.lo i.i_d1 < 0. then Some (i.i_pin, i.i_d1) else None)
          inputs
      in
      let tau_escape =
        match m.Models.tau_range with
        | None -> []
        | Some (lo, hi) ->
          List.filter_map
            (fun i ->
              if Interval.lo i.i_tau < lo || Interval.hi i.i_tau > hi then
                Some (i.i_pin, i.i_tau, (lo, hi))
              else None)
            inputs
      in
      arrivals.(Graph.cell_output g c) <- Some out;
      infos.(c) <-
        Some
          {
            ci_name = cell.Design.name;
            ci_gate = cell.Design.gate.Gate.name;
            ci_edge = edge;
            ci_switching = List.map (fun i -> i.i_pin) inputs;
            ci_assist = assist;
            ci_class = cls;
            ci_pairs = pairs;
            ci_out = out;
            ci_neg_delay = neg_delay;
            ci_tau_escape = tau_escape;
          }
  in
  Trace.with_span ~cat:"verify" "verify.propagate" (fun () ->
    Array.iter process (Graph.topological g));
  let unconstrained =
    Trace.with_span ~cat:"verify" "verify.unconstrained" @@ fun () ->
    Array.to_list (Graph.primary_inputs g)
    |> List.filter_map (fun net ->
         if arrivals.(net) <> None then None
         else begin
           let cone = Graph.fanout_cone g ~nets:[ net ] ~cells:[] in
           let sensitive =
             Array.exists
               (fun c ->
                 cone.(c)
                 && (match infos.(c) with
                    | Some ci -> List.length ci.ci_switching >= 1
                    | None -> false)
                 && (Graph.payload g c).Design.gate.Gate.fan_in >= 2)
               (Array.init (Graph.cell_count g) Fun.id)
           in
           if sensitive then Some (Graph.net_name g net) else None
         end)
  in
  {
    v_design = design;
    v_mode = mode;
    v_arrivals = arrivals;
    v_cells = infos;
    v_timing_cells = infos;
    v_unconstrained = unconstrained;
  }

(* --- accessors ---------------------------------------------------------- *)

let design t = t.v_design
let mode t = t.v_mode

let net_arrival t ~net =
  Option.bind (Graph.net_id (Design.graph t.v_design) net) (fun id ->
    t.v_arrivals.(id))

let cell_info t ~cell =
  Option.bind (Graph.cell_id (Design.graph t.v_design) cell) (fun id ->
    t.v_cells.(id))

let cells t =
  Array.to_list (Graph.topological (Design.graph t.v_design))
  |> List.filter_map (fun c -> t.v_cells.(c))

let unconstrained_pis t = t.v_unconstrained

type summary = {
  total_cells : int;
  switching_cells : int;
  never : int;
  always : int;
  may : int;
}

let summary t =
  let acc = { total_cells = Array.length t.v_cells;
              switching_cells = 0; never = 0; always = 0; may = 0 } in
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some ci ->
        let acc = { acc with switching_cells = acc.switching_cells + 1 } in
        (match ci.ci_class with
         | Never_proximate -> { acc with never = acc.never + 1 }
         | Always_proximate -> { acc with always = acc.always + 1 }
         | May_be_proximate -> { acc with may = acc.may + 1 }))
    acc t.v_cells

let prune_mask t =
  match t.v_mode with
  | Sta.Classic | Sta.Collapsed _ -> fun _ -> false
  | Sta.Proximity ->
    let never = Hashtbl.create 64 in
    Array.iter
      (function
        | Some ci when ci.ci_class = Never_proximate ->
          Hashtbl.replace never ci.ci_name ()
        | Some _ | None -> ())
      t.v_timing_cells;
    fun (cell : Design.cell) -> Hashtbl.mem never cell.Design.name

(* --- logic refinement --------------------------------------------------- *)

type refinement = { refined_pairs : int; refined_cells : int }

let refine t ~unsensitizable =
  let pairs = ref 0 and cells = ref 0 in
  let refined =
    Array.map
      (function
        | None -> None
        | Some ci ->
          let changed = ref false in
          let new_pairs =
            List.map
              (fun p ->
                if
                  p.pr_class <> Never_proximate
                  && unsensitizable ~cell:ci.ci_name ~a:p.pr_a ~b:p.pr_b
                then begin
                  incr pairs;
                  changed := true;
                  { p with pr_class = Never_proximate }
                end
                else p)
              ci.ci_pairs
          in
          if not !changed then Some ci
          else begin
            (* a cell is proximity-free once every switching pair is: the
               remaining verdicts only weaken (Always with a dead pair is
               no longer provably-always) *)
            let cls =
              if
                new_pairs <> []
                && List.for_all
                     (fun p -> p.pr_class = Never_proximate)
                     new_pairs
              then Never_proximate
              else
                match ci.ci_class with
                | Always_proximate -> May_be_proximate
                | c -> c
            in
            if cls = Never_proximate && ci.ci_class <> Never_proximate then
              incr cells;
            Some { ci with ci_pairs = new_pairs; ci_class = cls }
          end)
      t.v_cells
  in
  ( { t with v_cells = refined },
    { refined_pairs = !pairs; refined_cells = !cells } )

(* --- diagnostics -------------------------------------------------------- *)

let ps i = Interval.scale 1e12 i

let check ?file t =
  Trace.with_span ~cat:"verify" "verify.check" @@ fun () ->
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iter
    (function
      | None -> ()
      | Some ci ->
        List.iter
          (fun (pin, d1) ->
            add
              (Diagnostic.make ?file ~context:ci.ci_name Diagnostic.PX303
                 "input pin %d: reachable single-input delay %s ps has a \
                  negative lower bound — the measurement thresholds admit \
                  negative pin-to-output delays (§2)"
                 pin
                 (Interval.to_string (ps d1))))
          ci.ci_neg_delay;
        List.iter
          (fun (pin, tau, (lo, hi)) ->
            add
              (Diagnostic.make ?file ~context:ci.ci_name Diagnostic.PX302
                 "input pin %d: reachable slew %s ps escapes the \
                  characterized tau span [%g, %g] ps — table queries clamp \
                  (silent extrapolation)"
                 pin
                 (Interval.to_string (ps tau))
                 (lo *. 1e12) (hi *. 1e12)))
          ci.ci_tau_escape;
        List.iter
          (fun p ->
            if p.pr_straddles && p.pr_class <> Never_proximate then
              add
                (Diagnostic.make ?file ~context:ci.ci_name Diagnostic.PX301
                   "inputs %d and %d: separation %s ps straddles the \
                    dominance crossover s_ab = Delta_a - Delta_b = %s ps — \
                    the delay estimate is discontinuity-sensitive near the \
                    dominance flip"
                   p.pr_a p.pr_b
                   (Interval.to_string (ps p.pr_separation))
                   (Interval.to_string (ps p.pr_crossover))))
          ci.ci_pairs)
    t.v_cells;
  List.iter
    (fun pi_net ->
      add
        (Diagnostic.make ?file ~context:pi_net Diagnostic.PX304
         "primary input %s carries no event but feeds a proximity-sensitive \
          cone — the analysis assumes it is quiet"
         pi_net))
    t.v_unconstrained;
  Diagnostic.sort !diags
