type t = { lo : float; hi : float }

let make lo hi =
  if Float.is_nan lo || Float.is_nan hi || lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: [%g, %g]" lo hi)
  else { lo; hi }

let exact v = make v v
let of_pair (lo, hi) = make lo hi
let pair i = (i.lo, i.hi)
let lo i = i.lo
let hi i = i.hi
let width i = i.hi -. i.lo
let degenerate i = i.lo = i.hi
let contains i x = i.lo <= x && x <= i.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let intersects a b = a.lo <= b.hi && b.lo <= a.hi
let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let hull0 a = { lo = min a.lo 0.; hi = max a.hi 0. }
let add a b = { lo = a.lo +. b.lo; hi = a.hi +. b.hi }
let sub a b = { lo = a.lo -. b.hi; hi = a.hi -. b.lo }
let neg a = { lo = -.a.hi; hi = -.a.lo }

let scale k a =
  if k >= 0. then { lo = k *. a.lo; hi = k *. a.hi }
  else { lo = k *. a.hi; hi = k *. a.lo }

let max2 a b = { lo = max a.lo b.lo; hi = max a.hi b.hi }
let clamp_lo floor a = { lo = max a.lo floor; hi = max a.hi floor }

let inv a =
  if a.lo <= 0. then
    invalid_arg (Printf.sprintf "Interval.inv: [%g, %g] not positive" a.lo a.hi)
  else { lo = 1. /. a.hi; hi = 1. /. a.lo }

let to_string i =
  if degenerate i then Printf.sprintf "{%g}" i.lo
  else Printf.sprintf "[%g, %g]" i.lo i.hi
