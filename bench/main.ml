(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (and the ablations DESIGN.md calls out), then runs Bechamel
   microbenchmarks on the model-query hot paths.

   Usage:
     dune exec bench/main.exe                 -- everything
     dune exec bench/main.exe -- fig3_3 table5_1
     dune exec bench/main.exe -- --quick      -- reduced trial counts

   The golden reference is the in-repo circuit simulator (standing in for
   the paper's HSPICE); all workloads are seeded and deterministic. *)

module Floatx = Proxim_util.Floatx
module Prng = Proxim_util.Prng
module Stats = Proxim_util.Stats
module Histogram = Proxim_util.Histogram
module Pool = Proxim_util.Pool
module Single = Proxim_macromodel.Single
module Dual = Proxim_macromodel.Dual
module Gate = Proxim_gates.Gate
module Tech = Proxim_gates.Tech
module Vtc = Proxim_vtc.Vtc
module Measure = Proxim_measure.Measure
module Models = Proxim_macromodel.Models
module Proximity = Proxim_core.Proximity
module Inertial = Proxim_core.Inertial
module Storage = Proxim_core.Storage
module Collapse = Proxim_baseline.Collapse
module Memo_cache = Proxim_util.Memo_cache
module Timing = Proxim_timing.Timing
module Graph = Proxim_timing.Graph
module Design = Proxim_sta.Design
module Sta = Proxim_sta.Sta
module Prune = Proxim_sta.Prune
module Synthgen = Proxim_sta.Synthgen
module Reference = Proxim_timing.Reference
module Obs_metrics = Proxim_obs.Metrics
module Obs_trace = Proxim_obs.Trace

let quick = ref false
let domains = ref (Pool.recommended_domains ())
let trace_file : string option ref = ref None
let metrics_fmt : [ `Text | `Json ] option ref = ref None

(* the BENCH_*.json writers embed the live metrics snapshot so a bench
   artifact carries its own cache/pool/clamp observability *)
let metrics_json () = Obs_metrics.to_json (Obs_metrics.snapshot ())

let ps s = s *. 1e12

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title =
  Printf.printf "\n-- %s --\n" title

(* ------------------------------------------------------------------ *)
(* Shared context: the paper's 3-input NAND testbench                  *)

type ctx = {
  tech : Tech.t;
  nand3 : Gate.t;
  th : Vtc.thresholds;
  models : Models.t;
}

let make_ctx () =
  let tech = Tech.generic_5v in
  let nand3 = Gate.nand tech ~fan_in:3 in
  let th = Vtc.thresholds ~points:301 nand3 in
  let models = Models.of_oracle nand3 th in
  { tech; nand3; th; models }

let ctx = lazy (make_ctx ())

let event pin edge tau cross =
  { Proximity.pin; edge; tau; cross_time = cross }

let golden c events ~ref_pin =
  let stimuli =
    List.map
      (fun (e : Proximity.event) ->
        ( e.Proximity.pin,
          { Measure.edge = e.Proximity.edge; tau = e.Proximity.tau;
            cross_time = e.Proximity.cross_time } ))
      events
  in
  Measure.multi_input c.nand3 c.th ~stimuli ~ref_pin

(* ------------------------------------------------------------------ *)
(* Figure 1-2: delay and output transition vs separation               *)

let fig1_2 () =
  let c = Lazy.force ctx in
  section
    "Figure 1-2: proximity effect on a 3-input NAND (c stable at Vdd)";
  let run edge label =
    let tau_a = 500e-12 and tau_b = 100e-12 in
    let d_a = c.models.Models.delay1 ~pin:0 ~edge ~tau:tau_a in
    let d_b = c.models.Models.delay1 ~pin:1 ~edge ~tau:tau_b in
    let t_a = c.models.Models.trans1 ~pin:0 ~edge ~tau:tau_a in
    let t_b = c.models.Models.trans1 ~pin:1 ~edge ~tau:tau_b in
    let s_lo = -.(d_b +. t_b) and s_hi = d_a +. t_a in
    subsection
      (Printf.sprintf
         "%s inputs: tau_a = 500 ps, tau_b = 100 ps (output %s)" label
         (match edge with Measure.Fall -> "rise" | Measure.Rise -> "fall"));
    Printf.printf
      "  s_ab[ps]   dom | delay gold[ps] model[ps]  err%%  | trans gold[ps] \
       model[ps]  err%%\n";
    let points = if !quick then 9 else 17 in
    Array.iter
      (fun s ->
        let base = 2.5e-9 in
        let events = [ event 0 edge tau_a base; event 1 edge tau_b (base +. s) ] in
        let r = Proximity.evaluate c.models events in
        let g = golden c events ~ref_pin:r.Proximity.ref_pin in
        let derr =
          (r.Proximity.delay -. g.Measure.delay) /. g.Measure.delay *. 100.
        in
        let terr =
          (r.Proximity.out_transition -. g.Measure.out_transition)
          /. g.Measure.out_transition *. 100.
        in
        Printf.printf
          "  %8.1f    %s  |     %8.1f  %8.1f  %+5.1f |      %8.1f  %8.1f  \
           %+5.1f\n"
          (ps s)
          (Gate.pin_name r.Proximity.ref_pin)
          (ps g.Measure.delay) (ps r.Proximity.delay) derr
          (ps g.Measure.out_transition)
          (ps r.Proximity.out_transition)
          terr)
      (Floatx.linspace s_lo s_hi points)
  in
  run Measure.Fall "falling";
  run Measure.Rise "rising"

(* ------------------------------------------------------------------ *)
(* Figure 2-1: the VTC family and the threshold table                  *)

let fig2_1 () =
  let c = Lazy.force ctx in
  section "Figure 2-1: VTC family of the 3-input NAND";
  let fam = Vtc.family ~points:301 c.nand3 in
  Printf.printf "  subset      Vil      Vm      Vih   (V)\n";
  List.iter
    (fun (curve : Vtc.curve) ->
      let name =
        String.concat "" (List.map Gate.pin_name curve.Vtc.subset)
      in
      Printf.printf "  %-8s  %6.3f  %6.3f  %6.3f\n" ("{" ^ name ^ "}")
        curve.Vtc.vil curve.Vtc.vm curve.Vtc.vih)
    fam;
  let th = Vtc.choose fam in
  Printf.printf
    "  chosen thresholds: Vil = %.3f V (min), Vih = %.3f V (max)\n"
    th.Vtc.vil th.Vtc.vih;
  Printf.printf
    "  (paper, different process: Vil = 1.25 V, Vih = 3.37 V at Vdd = 5 V)\n"

(* ------------------------------------------------------------------ *)
(* Figure 3-3: proximity effect on delay, with dominance crossover     *)

let fig3_3 () =
  let c = Lazy.force ctx in
  section "Figure 3-3: delay vs separation; dominance crossover";
  let edge = Measure.Fall in
  let tau_a = 500e-12 in
  List.iter
    (fun tau_b ->
      let d_a = c.models.Models.delay1 ~pin:0 ~edge ~tau:tau_a in
      let d_b = c.models.Models.delay1 ~pin:1 ~edge ~tau:tau_b in
      let t_a = c.models.Models.trans1 ~pin:0 ~edge ~tau:tau_a in
      let t_b = c.models.Models.trans1 ~pin:1 ~edge ~tau:tau_b in
      let crossover = d_a -. d_b in
      subsection
        (Printf.sprintf
           "fall(a) = 500 ps, fall(b) = %.0f ps; predicted crossover at s = \
            %.1f ps"
           (ps tau_b) (ps crossover));
      Printf.printf "  s_ab[ps]   dom | delay gold[ps]  model[ps]  err%%\n";
      let points = if !quick then 9 else 15 in
      Array.iter
        (fun s ->
          let base = 3e-9 in
          let events =
            [ event 0 edge tau_a base; event 1 edge tau_b (base +. s) ]
          in
          let r = Proximity.evaluate c.models events in
          let g = golden c events ~ref_pin:r.Proximity.ref_pin in
          let derr =
            (r.Proximity.delay -. g.Measure.delay) /. g.Measure.delay *. 100.
          in
          Printf.printf "  %8.1f    %s  |      %8.1f   %8.1f  %+5.1f\n" (ps s)
            (Gate.pin_name r.Proximity.ref_pin)
            (ps g.Measure.delay) (ps r.Proximity.delay) derr)
        (Floatx.linspace (-.(d_b +. t_b)) (d_a +. t_a) points))
    [ 100e-12; 500e-12; 1000e-12 ]

(* ------------------------------------------------------------------ *)
(* Figure 4-2: storage complexity                                      *)

let fig4_2 () =
  section "Figure 4-2: storage complexity of the modeling options";
  List.iter
    (fun fan_in ->
      Format.printf "%a" (fun ppf () ->
        Storage.pp_comparison ppf ~fan_in ~points_per_axis:10) ())
    [ 2; 3; 4; 6; 8 ];
  Printf.printf
    "(cells are for delay only; double for the transition-time models)\n"

(* ------------------------------------------------------------------ *)
(* The 100-configuration validation dataset (Table 5-1 and friends)    *)

type sample = {
  s_events : Proximity.event list;
  s_gold : Measure.observation;
  s_ref_pin : int;
  s_ref_cross : float;
}

let validation_dataset = ref None

let dataset () =
  match !validation_dataset with
  | Some d -> d
  | None ->
    let c = Lazy.force ctx in
    let n = if !quick then 30 else 100 in
    let rng = Prng.create 19951010L (* the report's date *) in
    let samples =
      Array.init n (fun _ ->
        let tau () = Prng.float rng ~lo:50e-12 ~hi:2000e-12 in
        let base = 2.5e-9 in
        let sep () = Prng.float rng ~lo:(-500e-12) ~hi:500e-12 in
        let events =
          [
            event 0 Measure.Fall (tau ()) base;
            event 1 Measure.Fall (tau ()) (base +. sep ());
            event 2 Measure.Fall (tau ()) (base +. sep ());
          ]
        in
        let r = Proximity.evaluate c.models events in
        let g = golden c events ~ref_pin:r.Proximity.ref_pin in
        {
          s_events = events;
          s_gold = g;
          s_ref_pin = r.Proximity.ref_pin;
          s_ref_cross = r.Proximity.ref_cross;
        })
    in
    validation_dataset := Some samples;
    samples

let pct_errors ~pred_delay ~pred_trans samples =
  let derr =
    Array.map
      (fun s ->
        (pred_delay s -. s.s_gold.Measure.delay)
        /. s.s_gold.Measure.delay *. 100.)
      samples
  in
  let terr =
    Array.map
      (fun s ->
        (pred_trans s -. s.s_gold.Measure.out_transition)
        /. s.s_gold.Measure.out_transition *. 100.)
      samples
  in
  (derr, terr)

let print_stat_row label (st : Stats.summary) =
  Printf.printf "  %-28s %+7.2f  %6.2f  %+7.2f  %+7.2f\n" label st.Stats.mean
    st.Stats.std st.Stats.max st.Stats.min

let table5_1 () =
  let c = Lazy.force ctx in
  section
    (Printf.sprintf
       "Table 5-1: model vs circuit simulation, %d random configurations"
       (Array.length (dataset ())));
  let samples = dataset () in
  let eval ?correction s =
    Proximity.evaluate ?correction c.models s.s_events
  in
  let corr =
    Proximity.calibrate_correction c.nand3 c.th c.models ~edge:Measure.Fall
  in
  Printf.printf
    "  calibrated correction: delay %.1f ps, transition %.1f ps\n"
    (ps corr.Proximity.delay_err)
    (ps corr.Proximity.trans_err);
  Printf.printf "\n  quantity                       mean%%   std%%     max%%     min%%\n";
  let d_nc, t_nc =
    pct_errors samples
      ~pred_delay:(fun s -> (eval s).Proximity.delay)
      ~pred_trans:(fun s -> (eval s).Proximity.out_transition)
  in
  let d_c, t_c =
    pct_errors samples
      ~pred_delay:(fun s -> (eval ~correction:corr s).Proximity.delay)
      ~pred_trans:(fun s -> (eval ~correction:corr s).Proximity.out_transition)
  in
  print_stat_row "delay (no correction)" (Stats.summarize d_nc);
  print_stat_row "delay (with correction)" (Stats.summarize d_c);
  print_stat_row "rise time (no correction)" (Stats.summarize t_nc);
  print_stat_row "rise time (with correction)" (Stats.summarize t_c);
  Printf.printf "  paper: delay                   +1.40    2.46    +8.54    -6.94\n";
  Printf.printf "  paper: rise time               -1.33    4.82   +11.51   -13.15\n";
  (* Figure 5-1: error distributions *)
  subsection "Figure 5-1(a): delay error distribution [%] (no correction)";
  Format.printf "%a" Histogram.pp
    (Histogram.create ~lo:(-10.) ~hi:10. ~bins:10 d_nc);
  subsection "Figure 5-1(b): rise-time error distribution [%] (no correction)";
  Format.printf "%a" Histogram.pp
    (Histogram.create ~lo:(-15.) ~hi:15. ~bins:10 t_nc)

let ablation_correction () =
  (* the correction rows are already part of table5_1; this entry exists
     so the per-experiment index has a dedicated target *)
  table5_1 ()

let baseline_cmp () =
  let c = Lazy.force ctx in
  section "Baseline comparison: collapse-to-inverter vs proximity model";
  let samples = dataset () in
  let prox_d, prox_t =
    pct_errors samples
      ~pred_delay:(fun s ->
        (Proximity.evaluate c.models s.s_events).Proximity.delay)
      ~pred_trans:(fun s ->
        (Proximity.evaluate c.models s.s_events).Proximity.out_transition)
  in
  let of_variant variant =
    pct_errors samples
      ~pred_delay:(fun s ->
        let p = Collapse.predict variant c.nand3 c.th ~events:s.s_events in
        p.Collapse.out_cross -. s.s_ref_cross)
      ~pred_trans:(fun s ->
        let p = Collapse.predict variant c.nand3 c.th ~events:s.s_events in
        p.Collapse.out_transition)
  in
  let jun_d, jun_t = of_variant Collapse.Jun in
  let nl_d, nl_t = of_variant Collapse.Nabavi_lishi in
  Printf.printf "\n  method / delay error           mean%%   std%%     max%%     min%%\n";
  print_stat_row "proximity (this paper)" (Stats.summarize prox_d);
  print_stat_row "Jun et al. [8] collapse" (Stats.summarize jun_d);
  print_stat_row "Nabavi-Lishi [13] collapse" (Stats.summarize nl_d);
  Printf.printf "\n  method / rise-time error       mean%%   std%%     max%%     min%%\n";
  print_stat_row "proximity (this paper)" (Stats.summarize prox_t);
  print_stat_row "Jun et al. [8] collapse" (Stats.summarize jun_t);
  print_stat_row "Nabavi-Lishi [13] collapse" (Stats.summarize nl_t)

let ablation_table () =
  let c = Lazy.force ctx in
  section "Ablation: tabulated dual-input macromodel vs simulator oracle";
  let n = if !quick then 8 else 30 in
  let samples = Array.sub (dataset ()) 0 (min n (Array.length (dataset ()))) in
  Printf.printf "  building 3-D tables (this triggers many transient runs)...\n%!";
  let t0 = Unix.gettimeofday () in
  let full_x_tau = Floatx.logspace 0.25 16. 6 in
  let full_x_sep =
    [| -7.; -4.5; -3.; -2.; -1.25; -0.7; -0.3; 0.; 0.35; 0.7; 1.; 1.25 |]
  in
  let table_models =
    if !quick then
      Models.of_tables
        ~taus:(Floatx.logspace 30e-12 4e-9 8)
        ~x_tau:(Floatx.logspace 0.3 12. 5)
        ~x_sep:(Floatx.linspace (-2.5) 1.25 8)
        c.nand3 c.th
    else Models.of_tables ~x_tau:full_x_tau ~x_sep:full_x_sep c.nand3 c.th
  in
  let d_tbl, t_tbl =
    pct_errors samples
      ~pred_delay:(fun s ->
        (Proximity.evaluate table_models s.s_events).Proximity.delay)
      ~pred_trans:(fun s ->
        (Proximity.evaluate table_models s.s_events).Proximity.out_transition)
  in
  let d_orc, t_orc =
    pct_errors samples
      ~pred_delay:(fun s ->
        (Proximity.evaluate c.models s.s_events).Proximity.delay)
      ~pred_trans:(fun s ->
        (Proximity.evaluate c.models s.s_events).Proximity.out_transition)
  in
  (* the paper's Fig 4-2 claim: n dual tables (one per dominant pin,
     shared across the other inputs) suffice in practice *)
  let shared_models =
    if !quick then
      Models.of_tables
        ~taus:(Floatx.logspace 30e-12 4e-9 8)
        ~x_tau:(Floatx.logspace 0.3 12. 5)
        ~x_sep:(Floatx.linspace (-2.5) 1.25 8)
        ~share_others:true c.nand3 c.th
    else
      Models.of_tables ~x_tau:full_x_tau ~x_sep:full_x_sep ~share_others:true
        c.nand3 c.th
  in
  let d_shr, t_shr =
    pct_errors samples
      ~pred_delay:(fun s ->
        (Proximity.evaluate shared_models s.s_events).Proximity.delay)
      ~pred_trans:(fun s ->
        (Proximity.evaluate shared_models s.s_events).Proximity.out_transition)
  in
  Printf.printf "  table construction + queries: %.1f s\n" (Unix.gettimeofday () -. t0);
  Printf.printf "\n  dual-input model / delay       mean%%   std%%     max%%     min%%\n";
  print_stat_row "oracle (paper's methodology)" (Stats.summarize d_orc);
  print_stat_row "tabulated, n^2 tables" (Stats.summarize d_tbl);
  print_stat_row "tabulated, n shared (Fig 4-2)" (Stats.summarize d_shr);
  Printf.printf "\n  dual-input model / rise time   mean%%   std%%     max%%     min%%\n";
  print_stat_row "oracle (paper's methodology)" (Stats.summarize t_orc);
  print_stat_row "tabulated, n^2 tables" (Stats.summarize t_tbl);
  print_stat_row "tabulated, n shared (Fig 4-2)" (Stats.summarize t_shr)

let ablation_composition () =
  let c = Lazy.force ctx in
  section "Ablation: output-transition composition rule (eq 4.5 vs rates)";
  let samples = dataset () in
  let of_comp comp =
    pct_errors samples
      ~pred_delay:(fun s ->
        (Proximity.evaluate ~trans_composition:comp c.models s.s_events)
          .Proximity.delay)
      ~pred_trans:(fun s ->
        (Proximity.evaluate ~trans_composition:comp c.models s.s_events)
          .Proximity.out_transition)
  in
  let _, t_add = of_comp Proximity.Additive in
  let _, t_rate = of_comp Proximity.Rate_additive in
  Printf.printf "\n  rise-time composition          mean%%   std%%     max%%     min%%\n";
  print_stat_row "additive (eq 4.5 verbatim)" (Stats.summarize t_add);
  print_stat_row "rate-additive (default)" (Stats.summarize t_rate)

(* ------------------------------------------------------------------ *)
(* Figure 6-1: glitch magnitude vs separation (inertial delay)         *)

let fig6_1 () =
  let c = Lazy.force ctx in
  section "Figure 6-1: output glitch vs separation (a falls, b rises)";
  Printf.printf "  Vil threshold: %.3f V\n" c.th.Vtc.vil;
  List.iter
    (fun tau_rise ->
      subsection
        (Printf.sprintf "fall(a) = 500 ps, rise(b) = %.0f ps" (ps tau_rise));
      Printf.printf "  s_rise-fall[ps]   Vmin[V]   completes?\n";
      let points = if !quick then 8 else 14 in
      Array.iter
        (fun sep ->
          let g =
            Inertial.glitch c.nand3 c.th ~fall_pin:0 ~rise_pin:1
              ~tau_fall:500e-12 ~tau_rise ~sep
          in
          Printf.printf "  %12.1f   %8.3f   %s\n" (ps sep)
            g.Inertial.v_extreme
            (if g.Inertial.full_swing then "yes" else "no"))
        (Floatx.linspace (-2.5e-9) 0.5e-9 points);
      let s_min =
        Inertial.minimum_valid_separation c.nand3 c.th ~fall_pin:0
          ~rise_pin:1 ~tau_fall:500e-12 ~tau_rise
      in
      Printf.printf
        "  minimum separation for a valid output (inertial delay): %.1f ps\n"
        (ps s_min))
    [ 100e-12; 500e-12; 1000e-12 ]

(* ------------------------------------------------------------------ *)
(* Ablation: alpha-power device model (shape robustness)               *)

let ablation_alpha () =
  section "Ablation: alpha-power MOSFET model (shape robustness)";
  let tech = Tech.generic_5v_alpha in
  let nand3 = Gate.nand tech ~fan_in:3 in
  let th = Vtc.thresholds ~points:201 nand3 in
  let models = Models.of_oracle nand3 th in
  let edge = Measure.Fall in
  let tau_a = 500e-12 and tau_b = 100e-12 in
  let d_a = models.Models.delay1 ~pin:0 ~edge ~tau:tau_a in
  Printf.printf "  thresholds: Vil = %.3f V, Vih = %.3f V\n" th.Vtc.vil th.Vtc.vih;
  Printf.printf "  s_ab[ps]   delay gold[ps]  model[ps]  err%%\n";
  let mk_events s =
    let base = 2.5e-9 in
    [ event 0 edge tau_a base; event 1 edge tau_b (base +. s) ]
  in
  Array.iter
    (fun s ->
      let events = mk_events s in
      let r = Proximity.evaluate models events in
      let stimuli =
        List.map
          (fun (e : Proximity.event) ->
            ( e.Proximity.pin,
              { Measure.edge; tau = e.Proximity.tau;
                cross_time = e.Proximity.cross_time } ))
          events
      in
      let g = Measure.multi_input nand3 th ~stimuli ~ref_pin:r.Proximity.ref_pin in
      Printf.printf "  %8.1f        %8.1f   %8.1f  %+5.1f\n" (ps s)
        (ps g.Measure.delay) (ps r.Proximity.delay)
        ((r.Proximity.delay -. g.Measure.delay) /. g.Measure.delay *. 100.))
    (Floatx.linspace (-300e-12) d_a (if !quick then 5 else 9))

(* ------------------------------------------------------------------ *)
(* Generalization: other fan-ins and gate families (paper's §7 future
   work: "a comprehensive delay model for multi-input gates")           *)

let fanin_sweep () =
  section "Generalization: ProximityDelay on other gates (beyond the paper)";
  let tech = Tech.generic_5v in
  let rng = Prng.create 77L in
  List.iter
    (fun (gate, edge, label) ->
      let th = Vtc.thresholds ~points:201 gate in
      let models = Models.of_oracle gate th in
      let n = if !quick then 6 else 15 in
      let derrs = ref [] and terrs = ref [] in
      for _ = 1 to n do
        let base = 2.5e-9 in
        let events =
          List.init gate.Gate.fan_in (fun pin ->
            event pin edge
              (Prng.float rng ~lo:50e-12 ~hi:1500e-12)
              (base +. Prng.float rng ~lo:(-400e-12) ~hi:400e-12))
        in
        let r = Proximity.evaluate models events in
        let stimuli =
          List.map
            (fun (e : Proximity.event) ->
              ( e.Proximity.pin,
                { Measure.edge; tau = e.Proximity.tau;
                  cross_time = e.Proximity.cross_time } ))
            events
        in
        let g = Measure.multi_input gate th ~stimuli ~ref_pin:r.Proximity.ref_pin in
        derrs :=
          ((r.Proximity.delay -. g.Measure.delay) /. g.Measure.delay *. 100.)
          :: !derrs;
        terrs :=
          ((r.Proximity.out_transition -. g.Measure.out_transition)
           /. g.Measure.out_transition *. 100.)
          :: !terrs
      done;
      let ds = Stats.summarize (Array.of_list !derrs) in
      let ts = Stats.summarize (Array.of_list !terrs) in
      Printf.printf
        "  %-22s delay: mean %+5.2f%% std %5.2f%% [%+6.2f, %+6.2f] | trans:          mean %+5.2f%% std %5.2f%%
"
        label ds.Stats.mean ds.Stats.std ds.Stats.min ds.Stats.max ts.Stats.mean
        ts.Stats.std)
    [
      (Gate.nand tech ~fan_in:2, Measure.Fall, "nand2, falling");
      (Gate.nand tech ~fan_in:4, Measure.Fall, "nand4, falling");
      (Gate.nand tech ~fan_in:4, Measure.Rise, "nand4, rising");
      (Gate.nor tech ~fan_in:3, Measure.Rise, "nor3, rising");
      (Gate.nor tech ~fan_in:3, Measure.Fall, "nor3, falling");
    ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks                                            *)

let microbench () =
  section "Microbenchmarks: model query vs golden simulation";
  let c = Lazy.force ctx in
  let single =
    Proxim_macromodel.Single.build
      ~taus:(Floatx.logspace 30e-12 4e-9 10)
      c.nand3 c.th ~pin:0 ~edge:Measure.Fall
  in
  let events =
    [
      event 0 Measure.Fall 400e-12 2.5e-9;
      event 1 Measure.Fall 200e-12 2.55e-9;
      event 2 Measure.Fall 800e-12 2.45e-9;
    ]
  in
  let high = Proxim_waveform.Pwl.constant c.tech.Tech.vdd in
  let fall = Proxim_waveform.Pwl.ramp ~t0:1e-9 ~width:400e-12 ~v_from:5. ~v_to:0. in
  let open Bechamel in
  let tests =
    [
      Test.make ~name:"single-input table query"
        (Staged.stage (fun () ->
           ignore (Proxim_macromodel.Single.delay single ~tau:333e-12)));
      Test.make ~name:"dominance ordering (3 events, memoized oracle)"
        (Staged.stage (fun () ->
           ignore (Proximity.dominance_order c.models events)));
      Test.make ~name:"full ProximityDelay (memoized oracle)"
        (Staged.stage (fun () -> ignore (Proximity.evaluate c.models events)));
      Test.make ~name:"golden transient (NAND3, one input)"
        (Staged.stage (fun () ->
           let inst =
             Gate.instantiate c.nand3 ~inputs:[| fall; high; high |]
           in
           ignore
             (Proxim_spice.Transient.run inst.Gate.net ~t_stop:3e-9)));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if !quick then 0.25 else 1.0))
      ~kde:(Some 1000) ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| "run" |])
          instance results
      in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ t ] ->
            let unit_, v =
              if t > 1e6 then ("ms", t /. 1e6)
              else if t > 1e3 then ("us", t /. 1e3)
              else ("ns", t)
            in
            Printf.printf "  %-48s %10.2f %s/run\n" name v unit_
          | Some _ | None -> Printf.printf "  %-48s (no estimate)\n" name)
        ols)
    tests

(* ------------------------------------------------------------------ *)
(* Incremental (ECO) re-analysis: Sta.update on a single edit vs a full
   Sta.reanalyze of the same final configuration.  Both run on a serial
   pool so the numbers measure the incremental machinery, not domain
   dispatch (parallel_bench covers the pool).  Writes
   BENCH_incremental.json.                                             *)

(* Strictly layered random designs: cells in layer L read only layer L-1
   outputs, so all inputs of a cell share one edge parity (the gates
   invert) and the fanout cone of a single edit stays a small fraction
   of the design -- the regime where ECO re-analysis pays. *)
let random_layered_design rng ~tech ~depth ~width =
  let gate_pool =
    [|
      Gate.nand tech ~fan_in:2; Gate.nor tech ~fan_in:2;
      Gate.nand tech ~fan_in:3;
    |]
  in
  let pis = Array.init width (Printf.sprintf "pi%d") in
  let prev = ref pis in
  let cells = ref [] in
  for layer = 0 to depth - 1 do
    let layer_cells =
      Array.init width (fun j ->
          let gate =
            gate_pool.(Prng.int rng ~lo:0 ~hi:(Array.length gate_pool - 1))
          in
          let rec pick chosen n =
            if n = 0 then chosen
            else
              let i = Prng.int rng ~lo:0 ~hi:(width - 1) in
              if List.mem i chosen then pick chosen n
              else pick (i :: chosen) (n - 1)
          in
          let ins = pick [] gate.Gate.fan_in in
          {
            Design.name = Printf.sprintf "u%d_%d" layer j;
            gate;
            input_nets = Array.of_list (List.map (fun i -> (!prev).(i)) ins);
            output_net = Printf.sprintf "n%d_%d" layer j;
          })
    in
    cells := Array.to_list layer_cells @ !cells;
    prev := Array.map (fun c -> c.Design.output_net) layer_cells
  done;
  Design.create ~cells:(List.rev !cells)
    ~primary_inputs:(Array.to_list pis)
    ~primary_outputs:(Array.to_list !prev)

(* A synthetic-model factory with per-cell seed overrides, so a
   Touch_cell ECO can stand in for re-characterizing one instance.
   Mirrors Sta.synthetic_factory's stats plumbing: the merged counters
   cover the factory memo plus every built model's internal cache. *)
let eco_model_factory () =
  let overrides : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let cache = Memo_cache.create ~shards:4 () in
  let created = ref [] in
  let created_mutex = Mutex.create () in
  let models (cell : Design.cell) =
    let seed =
      match Hashtbl.find_opt overrides cell.Design.name with
      | Some s -> s
      | None -> 0
    in
    Memo_cache.find_or_compute cache
      (cell.Design.gate.Gate.name, seed)
      (fun () ->
        let m = Models.synthetic ~seed cell.Design.gate in
        Mutex.protect created_mutex (fun () -> created := m :: !created);
        m)
  in
  let factory_stats () =
    let built = Mutex.protect created_mutex (fun () -> !created) in
    List.fold_left
      (fun acc (m : Models.t) ->
        Models.merge_stats acc (m.Models.cache_stats ()))
      (Memo_cache.stats cache) built
  in
  (overrides, models, factory_stats)

let arrival_bits_eq (a : Sta.arrival) (b : Sta.arrival) =
  Int64.equal (Int64.bits_of_float a.Sta.time) (Int64.bits_of_float b.Sta.time)
  && Int64.equal (Int64.bits_of_float a.Sta.slew) (Int64.bits_of_float b.Sta.slew)
  && a.Sta.edge = b.Sta.edge

let report_bits_eq (a : Sta.report) (b : Sta.report) =
  List.length a.Sta.arrivals = List.length b.Sta.arrivals
  && List.for_all2
       (fun (n1, a1) (n2, a2) -> String.equal n1 n2 && arrival_bits_eq a1 a2)
       a.Sta.arrivals b.Sta.arrivals
  && (match (a.Sta.critical_po, b.Sta.critical_po) with
     | None, None -> true
     | Some (n1, a1), Some (n2, a2) ->
       String.equal n1 n2 && arrival_bits_eq a1 a2
     | _ -> false)
  && a.Sta.predecessors = b.Sta.predecessors

type incr_result = {
  ir_cells : int;
  ir_levels : int;
  ir_trials : int;
  ir_full_ms : float;  (** median *)
  ir_incr_ms : float;  (** median *)
  ir_speedup : float;
  ir_evaluated : float;  (** median cells re-evaluated per update *)
  ir_identical : bool;
  ir_stats : Memo_cache.stats;
}

let random_pi_event rng =
  {
    Sta.time = Prng.float rng ~lo:0. ~hi:300e-12;
    slew = Prng.float rng ~lo:150e-12 ~hi:600e-12;
    edge = Measure.Fall;
  }

(* ------------------------------------------------------------------ *)
(* Parallel scaling: serial vs the work-stealing domain pool on the
   characterization and STA workloads.  One run produces one row per
   domain count (2/4/8), each with the pool.* counter deltas observed
   during that row's build, so the committed BENCH_parallel.json shows
   the whole scaling curve and whether the pool actually fanned out.
   host_cores is recorded because domain counts beyond the physical
   cores measure OCaml's stop-the-world GC oversubscription penalty,
   not the pool -- the CI gate only enforces speedup floors on rows the
   host can actually run in parallel.                                  *)

type pool_delta = {
  pd_parallel_jobs : int;
  pd_serial_jobs : int;
  pd_tasks : int;
  pd_chunks : int;
  pd_steals : int;
}

let pool_counters () =
  ( Pool.parallel_jobs (),
    Pool.serial_jobs (),
    Pool.tasks_dispatched (),
    Pool.chunks_dispatched (),
    Pool.steals () )

let pool_delta_since (pj, sj, tk, ch, st) =
  let pj', sj', tk', ch', st' = pool_counters () in
  {
    pd_parallel_jobs = pj' - pj;
    pd_serial_jobs = sj' - sj;
    pd_tasks = tk' - tk;
    pd_chunks = ch' - ch;
    pd_steals = st' - st;
  }

let pool_delta_json d =
  Printf.sprintf
    "{ \"parallel_jobs\": %d, \"serial_jobs\": %d, \"tasks\": %d, \
     \"chunks\": %d, \"steals\": %d }"
    d.pd_parallel_jobs d.pd_serial_jobs d.pd_tasks d.pd_chunks d.pd_steals

let parallel_bench () =
  let c = Lazy.force ctx in
  let host_cores = Pool.recommended_domains () in
  section "Parallel scaling: characterization + STA, serial vs domain pool";
  Printf.printf "  host cores: %d%s\n" host_cores
    (if host_cores < 2 then
       " (multi-domain rows measure GC oversubscription, not scaling)"
     else "");
  (* characterization workload: the same nand3 tables at every width *)
  let taus = Floatx.logspace 30e-12 4e-9 (if !quick then 8 else 12) in
  let x_tau = Floatx.logspace 0.3 12. (if !quick then 5 else 6) in
  let x_sep =
    if !quick then Floatx.linspace (-2.5) 1.25 8
    else [| -7.; -4.5; -3.; -2.; -1.25; -0.7; -0.3; 0.; 0.35; 0.7; 1.; 1.25 |]
  in
  let grid_runs =
    2 * Array.length x_tau * Array.length x_tau * Array.length x_sep
  in
  Printf.printf
    "  characterization workload: 2 single tables (%d transients, one \
     batched job) + 1 dual table (%d transients)\n%!"
    (2 * Array.length taus) grid_runs;
  let build pool =
    let t0 = Unix.gettimeofday () in
    let singles =
      Single.build_many ~taus ~pool c.nand3 c.th
        [| (0, Measure.Fall); (1, Measure.Fall) |]
    in
    let dual =
      Dual.build ~x_tau ~x_sep ~pool c.nand3 c.th ~single_dom:singles.(0)
        ~single_other:singles.(1) ~other:1
    in
    ( Unix.gettimeofday () -. t0,
      Single.save singles.(0) ^ Single.save singles.(1) ^ Dual.save dual )
  in
  let serial_pool = Pool.create ~domains:1 in
  let t_serial, tables_serial = build serial_pool in
  Pool.shutdown serial_pool;
  Printf.printf "  serial (--domains 1): %6.2f s\n%!" t_serial;
  let char_rows =
    List.map
      (fun d ->
        let before = pool_counters () in
        let pool = Pool.create ~domains:d in
        let t, tables = build pool in
        Pool.shutdown pool;
        let delta = pool_delta_since before in
        let identical = String.equal tables_serial tables in
        let speedup = if t > 0. then t_serial /. t else 1. in
        Printf.printf
          "  %d domains: %6.2f s (%.2fx), %d parallel jobs, %d chunks, %d \
           steals, tables %s\n%!"
          d t speedup delta.pd_parallel_jobs delta.pd_chunks delta.pd_steals
          (if identical then "bit-identical" else "DIFFER");
        (d, t, speedup, identical, delta))
      [ 2; 4; 8 ]
  in
  (* STA workload: proximity-mode reanalysis of a layered design whose
     levels are wide enough for chunked level execution, with synthetic
     models carrying an artificial per-evaluation cost.  A fresh factory
     per run keeps the model caches cold, so every run times real
     evaluations rather than replays.  The same PRNG seed at every width
     makes the design, arrivals and models identical across runs. *)
  let depth, width = if !quick then (3, 48) else (5, 64) in
  let work = if !quick then 5_000 else 20_000 in
  let sta_domains = max 2 !domains in
  let trials = 3 in
  let sta_run d =
    let rng = Prng.create 0x57A11E1L in
    let ts = Array.make trials 0. in
    let report = ref None in
    let before = pool_counters () in
    let pool = Pool.create ~domains:d in
    for t = 0 to trials - 1 do
      let design = random_layered_design rng ~tech:c.tech ~depth ~width in
      let pi =
        List.map
          (fun net -> (net, random_pi_event rng))
          (Design.primary_inputs design)
      in
      let factory = Sta.synthetic_factory ~work () in
      let ir =
        Sta.build_ir ~mode:Sta.Proximity ~models:factory.Sta.models
          ~thresholds:c.th design ~pi
      in
      let t0 = Unix.gettimeofday () in
      ignore (Sta.reanalyze ~pool ir);
      ts.(t) <- Unix.gettimeofday () -. t0;
      report := Some (Sta.report ir)
    done;
    Pool.shutdown pool;
    (Stats.percentile ts 50., pool_delta_since before, Option.get !report)
  in
  Printf.printf
    "  STA workload: %d cells / %d levels, %d trials, synthetic work %d\n%!"
    (depth * width) depth trials work;
  let t_sta_serial, _, report_serial = sta_run 1 in
  Printf.printf "  STA serial (1 domain): median %.4f s\n%!" t_sta_serial;
  let t_sta_par, sta_delta, report_par = sta_run sta_domains in
  let sta_identical = report_bits_eq report_serial report_par in
  let sta_speedup =
    if t_sta_par > 0. then t_sta_serial /. t_sta_par else 1.
  in
  Printf.printf
    "  STA %d domains: median %.4f s (%.2fx), %d parallel jobs, %d steals, \
     reports %s\n%!"
    sta_domains t_sta_par sta_speedup sta_delta.pd_parallel_jobs
    sta_delta.pd_steals
    (if sta_identical then "bit-identical" else "DIFFER");
  let all_identical =
    sta_identical && List.for_all (fun (_, _, _, i, _) -> i) char_rows
  in
  Printf.printf
    "  PARALLEL SUMMARY: characterization %s at 2/4/8 domains; STA %.2fx at \
     %d domains (%d parallel jobs); host %d core(s)\n"
    (String.concat "/"
       (List.map
          (fun (_, _, s, _, _) -> Printf.sprintf "%.2fx" s)
          char_rows))
    sta_speedup sta_domains sta_delta.pd_parallel_jobs host_cores;
  if not all_identical then
    Printf.printf "  ERROR: parallel results differ from serial!\n";
  let oc = open_out "BENCH_parallel.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"nand3 table build (%d transients) + proximity STA \
     (%d cells, synthetic work %d)\",\n\
    \  \"quick\": %b,\n\
    \  \"host_cores\": %d,\n\
    \  \"characterization\": {\n\
    \    \"serial_s\": %.3f,\n\
    \    \"rows\": [\n"
    ((2 * Array.length taus) + grid_runs)
    (depth * width) work !quick host_cores t_serial;
  List.iteri
    (fun i (d, t, speedup, identical, delta) ->
      Printf.fprintf oc
        "      { \"domains\": %d, \"parallel_s\": %.3f, \"speedup\": %.3f, \
         \"bit_identical\": %b, \"pool\": %s }%s\n"
        d t speedup identical (pool_delta_json delta)
        (if i = List.length char_rows - 1 then "" else ","))
    char_rows;
  Printf.fprintf oc
    "    ]\n\
    \  },\n\
    \  \"sta\": { \"cells\": %d, \"levels\": %d, \"trials\": %d, \
     \"domains\": %d, \"serial_s\": %.4f, \"parallel_s\": %.4f, \
     \"speedup\": %.3f, \"bit_identical\": %b, \"pool\": %s },\n\
    \  \"metrics\": %s\n\
     }\n"
    (depth * width) depth trials sta_domains t_sta_serial t_sta_par
    sta_speedup sta_identical (pool_delta_json sta_delta) (metrics_json ());
  close_out oc;
  Printf.printf "  wrote BENCH_parallel.json\n"

let incremental_design rng pool th ~tech ~depth ~width ~trials =
  let design = random_layered_design rng ~tech ~depth ~width in
  let n_cells = List.length (Design.cells design) in
  let overrides, models, factory_stats = eco_model_factory () in
  let pi =
    List.map
      (fun net -> (net, random_pi_event rng))
      (Design.primary_inputs design)
  in
  let build () =
    Sta.build_ir ~mode:Sta.Proximity ~models ~thresholds:th design ~pi
  in
  let ir = build () in
  let ir_full = build () in
  ignore (Sta.reanalyze ~pool ir);
  ignore (Sta.reanalyze ~pool ir_full);
  let pis = Array.of_list (Design.primary_inputs design) in
  let cell_names =
    Array.of_list (List.map (fun c -> c.Design.name) (Design.cells design))
  in
  let t_incr = Array.make trials 0. in
  let t_full = Array.make trials 0. in
  let evaluated = Array.make trials 0. in
  let identical = ref true in
  for t = 0 to trials - 1 do
    let eco =
      if Prng.int rng ~lo:0 ~hi:9 < 7 then
        (* re-timed primary input *)
        let net = pis.(Prng.int rng ~lo:0 ~hi:(Array.length pis - 1)) in
        Sta.Set_pi (net, Some (random_pi_event rng))
      else begin
        (* one re-characterized instance: swap its model seed *)
        let name =
          cell_names.(Prng.int rng ~lo:0 ~hi:(Array.length cell_names - 1))
        in
        Hashtbl.replace overrides name (t + 1);
        Sta.Touch_cell name
      end
    in
    let t0 = Unix.gettimeofday () in
    let st = Sta.update ~pool ir [ eco ] in
    t_incr.(t) <- Unix.gettimeofday () -. t0;
    evaluated.(t) <- float_of_int st.Timing.evaluated;
    (* bring ir_full's sources/models to the same configuration, then
       time a from-scratch pass over it *)
    ignore (Sta.update ~pool ir_full [ eco ]);
    let t0 = Unix.gettimeofday () in
    ignore (Sta.reanalyze ~pool ir_full);
    t_full.(t) <- Unix.gettimeofday () -. t0;
    if not (report_bits_eq (Sta.report ir) (Sta.report ir_full)) then
      identical := false
  done;
  let median a = Stats.percentile a 50. in
  let full_ms = 1e3 *. median t_full and incr_ms = 1e3 *. median t_incr in
  {
    ir_cells = n_cells;
    ir_levels = Graph.level_count (Design.graph design);
    ir_trials = trials;
    ir_full_ms = full_ms;
    ir_incr_ms = incr_ms;
    ir_speedup = (if incr_ms > 0. then full_ms /. incr_ms else 1.);
    ir_evaluated = median evaluated;
    ir_identical = !identical;
    ir_stats = factory_stats ();
  }

(* ------------------------------------------------------------------ *)
(* Scaling curve: generated designs at 10^4 .. 10^6 cells, one full
   analyze and one single-edit update each, with the peak-RSS
   high-water mark reset per row so the footprint is attributable.
   Synthetic models run memo-free: their query keys are continuous
   floats that essentially never repeat across a large design, so the
   unbounded cache would otherwise dominate the measurement.           *)

type scale_row = {
  sc_cells : int;
  sc_levels : int;
  sc_nets : int;
  sc_gen_ms : float;
  sc_analyze_ms : float;
  sc_update_ms : float;
  sc_update_evaluated : int;
  sc_incr_ratio : float;  (** update_evaluated / cells *)
  sc_bit_identical : bool;
  sc_peak_rss_mb : float;
  sc_arena_mb : float;
}

let scaling_row pool th ~tech ~cells =
  Gc.compact ();
  Obs_metrics.reset_peak_rss ();
  let t0 = Unix.gettimeofday () in
  let _name, design = Synthgen.generate ~seed:1 ~tech ~cells () in
  let gen_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
  let factory = Sta.synthetic_factory ~memo:false () in
  let pi =
    List.map
      (fun net ->
        (net, { Sta.time = 0.; slew = 300e-12; edge = Measure.Fall }))
      (Design.primary_inputs design)
  in
  let ir =
    Sta.build_ir ~mode:Sta.Proximity ~models:factory.Sta.models ~thresholds:th
      design ~pi
  in
  let t0 = Unix.gettimeofday () in
  ignore (Sta.reanalyze ~pool ir : Timing.stats);
  let analyze_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
  let eco =
    Sta.Set_pi
      ("pi0", Some { Sta.time = 20e-12; slew = 250e-12; edge = Measure.Fall })
  in
  let t0 = Unix.gettimeofday () in
  let st = Sta.update ~pool ir [ eco ] in
  let update_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
  let g = Design.graph design in
  (* read the high-water mark before the record-engine oracle runs: its
     boxed allocations are verification overhead, not the workload's *)
  let peak_rss_mb =
    float_of_int (Obs_metrics.peak_rss_bytes ()) /. (1024. *. 1024.)
  in
  let arena_mb =
    float_of_int (Timing.arena_bytes (Sta.timing ir)) /. (1024. *. 1024.)
  in
  let identical = Reference.agrees (Sta.timing ir) in
  {
    sc_cells = cells;
    sc_levels = Graph.level_count g;
    sc_nets = Graph.net_count g;
    sc_gen_ms = gen_ms;
    sc_analyze_ms = analyze_ms;
    sc_update_ms = update_ms;
    sc_update_evaluated = st.Timing.evaluated;
    sc_incr_ratio = float_of_int st.Timing.evaluated /. float_of_int cells;
    sc_bit_identical = identical;
    sc_peak_rss_mb = peak_rss_mb;
    sc_arena_mb = arena_mb;
  }

let incremental_bench () =
  let c = Lazy.force ctx in
  section "Incremental (ECO) re-analysis: Sta.update vs full reanalyze";
  let sizes =
    if !quick then [ (3, 64) ] else [ (3, 133); (4, 150) ]
  in
  let trials = if !quick then 8 else 40 in
  let rng = Prng.create 0xEC0L in
  let pool = Pool.create ~domains:1 in
  let results =
    List.map
      (fun (depth, width) ->
        let r =
          incremental_design rng pool c.th ~tech:c.tech ~depth ~width ~trials
        in
        Printf.printf
          "  %4d cells / %d levels: full %8.3f ms, incremental %8.3f ms \
           (%5.1fx), median %3.0f of %d cells re-evaluated, %s\n%!"
          r.ir_cells r.ir_levels r.ir_full_ms r.ir_incr_ms r.ir_speedup
          r.ir_evaluated r.ir_cells
          (if r.ir_identical then "bit-identical" else "MISMATCH");
        r)
      sizes
  in
  let identical = List.for_all (fun r -> r.ir_identical) results in
  let speedup =
    List.fold_left (fun acc r -> Float.min acc r.ir_speedup) infinity results
  in
  let stats =
    List.fold_left
      (fun acc r -> Models.merge_stats acc r.ir_stats)
      { Memo_cache.hits = 0; misses = 0; waits = 0; evictions = 0; entries = 0;
        local_hits = 0 }
      results
  in
  subsection "Scaling: generated designs, full analyze vs single-edit ECO";
  let scale_sizes =
    if !quick then [ 10_000; 100_000 ] else [ 10_000; 100_000; 1_000_000 ]
  in
  let scaling =
    List.map
      (fun cells ->
        let r = scaling_row pool c.th ~tech:c.tech ~cells in
        Printf.printf
          "  %8d cells: gen %7.0f ms, analyze %8.1f ms, update %6.2f ms \
           (%d cells, ratio %.2e), arena %.1f MB, peak RSS %.1f MB, %s\n%!"
          r.sc_cells r.sc_gen_ms r.sc_analyze_ms r.sc_update_ms
          r.sc_update_evaluated r.sc_incr_ratio r.sc_arena_mb r.sc_peak_rss_mb
          (if r.sc_bit_identical then "bit-identical" else "MISMATCH");
        r)
      scale_sizes
  in
  Pool.shutdown pool;
  let identical = identical && List.for_all (fun r -> r.sc_bit_identical) scaling in
  Printf.printf
    "  INCREMENTAL SUMMARY: median speedup %.1fx (worst design), reports \
     %s, model cache %d hits / %d misses / %d entries\n"
    speedup
    (if identical then "bit-identical" else "DIFFER")
    stats.Memo_cache.hits stats.Memo_cache.misses stats.Memo_cache.entries;
  let oc = open_out "BENCH_incremental.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"single-edit ECO on random layered designs, proximity \
     mode, synthetic models\",\n\
    \  \"quick\": %b,\n\
    \  \"trials_per_design\": %d,\n\
    \  \"median_speedup\": %.2f,\n\
    \  \"bit_identical\": %b,\n\
    \  \"designs\": [\n"
    !quick trials speedup identical;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"cells\": %d, \"levels\": %d, \"full_median_ms\": %.4f, \
         \"incremental_median_ms\": %.4f, \"median_speedup\": %.2f, \
         \"median_evaluated\": %.0f, \"bit_identical\": %b }%s\n"
        r.ir_cells r.ir_levels r.ir_full_ms r.ir_incr_ms r.ir_speedup
        r.ir_evaluated r.ir_identical
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ],\n  \"scaling\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"cells\": %d, \"levels\": %d, \"nets\": %d, \"gen_ms\": \
         %.1f, \"analyze_ms\": %.2f, \"update_ms\": %.4f, \
         \"update_evaluated\": %d, \"incr_ratio\": %.3e, \"bit_identical\": \
         %b, \"peak_rss_mb\": %.1f, \"arena_mb\": %.1f }%s\n"
        r.sc_cells r.sc_levels r.sc_nets r.sc_gen_ms r.sc_analyze_ms
        r.sc_update_ms r.sc_update_evaluated r.sc_incr_ratio
        r.sc_bit_identical r.sc_peak_rss_mb r.sc_arena_mb
        (if i = List.length scaling - 1 then "" else ","))
    scaling;
  Printf.fprintf oc
    "  ],\n\
    \  \"model_cache\": { \"hits\": %d, \"misses\": %d, \"entries\": %d },\n\
    \  \"metrics\": %s\n\
     }\n"
    stats.Memo_cache.hits stats.Memo_cache.misses stats.Memo_cache.entries
    (metrics_json ());
  close_out oc;
  Printf.printf "  wrote BENCH_incremental.json\n"

(* ------------------------------------------------------------------ *)
(* Static verification: interval soundness on a randomized design, and
   the never-proximate pruning payoff.  Writes BENCH_verify.json.      *)

module Verify = Proxim_verify.Verify
module Interval = Proxim_verify.Interval

let verify_bench () =
  let c = Lazy.force ctx in
  section
    "Static verification: interval soundness and never-proximate pruning";
  let depth = 4 and width = if !quick then 40 else 110 in
  let rng = Prng.create 0x5AFEL in
  let design = random_layered_design rng ~tech:c.tech ~depth ~width in
  let n_cells = List.length (Design.cells design) in
  let factory = Sta.synthetic_factory () in
  let models = factory.Sta.models in
  (* roughly half the primary inputs stay quiet, a wide time spread: the
     regime where many cells see a single switching input and the
     never-proximate verdict pays *)
  let pi =
    List.filter_map
      (fun net ->
        if Prng.int rng ~lo:0 ~hi:1 = 0 then None
        else
          Some
            ( net,
              {
                Sta.time = Prng.float rng ~lo:0. ~hi:800e-12;
                slew = Prng.float rng ~lo:150e-12 ~hi:600e-12;
                edge = Measure.Fall;
              } ))
      (Design.primary_inputs design)
  in
  let time_window = 40e-12 and tau_window = 20e-12 in
  let events =
    List.map (Verify.of_sta_event ~time_window ~tau_window) pi
  in
  let verify_of mode =
    Verify.analyze ~mode ~models ~thresholds:c.th design ~pi:events
  in
  let v_prox = verify_of Sta.Proximity in
  let s = Verify.summary v_prox in
  let prune_rate =
    if s.Verify.switching_cells = 0 then 0.
    else float_of_int s.Verify.never /. float_of_int s.Verify.switching_cells
  in
  Printf.printf
    "  design: %d cells, %d switching, %d constrained of %d primary inputs \
     (±%.0f ps time, ±%.0f ps tau windows)\n"
    n_cells s.Verify.switching_cells (List.length pi)
    (List.length (Design.primary_inputs design))
    (ps time_window) (ps tau_window);
  Printf.printf
    "  classification: never %d / always %d / may %d  (prune rate %.1f%%)\n"
    s.Verify.never s.Verify.always s.Verify.may (100. *. prune_rate);
  (* soundness: randomized concrete analyses must land inside the
     intervals, in both abstracted modes *)
  let pool = Pool.create ~domains:1 in
  let trials = if !quick then 20 else 100 in
  let draw_rng = Prng.create 0xD12AL in
  let check_mode mode v =
    let violations = ref 0 in
    for _ = 1 to trials do
      let concrete_pi =
        List.map
          (fun (net, (a : Sta.arrival)) ->
            ( net,
              {
                a with
                Sta.time =
                  Prng.float draw_rng ~lo:(a.Sta.time -. time_window)
                    ~hi:(a.Sta.time +. time_window);
                slew =
                  Prng.float draw_rng ~lo:(a.Sta.slew -. tau_window)
                    ~hi:(a.Sta.slew +. tau_window);
              } ))
          pi
      in
      let report =
        Sta.analyze ~mode ~pool ~models ~thresholds:c.th design
          ~pi:concrete_pi
      in
      List.iter
        (fun (net, (a : Sta.arrival)) ->
          match Verify.net_arrival v ~net with
          | None -> incr violations
          | Some (abs : Verify.aarrival) ->
            if
              not
                (Interval.contains abs.Verify.a_time a.Sta.time
                && Interval.contains abs.Verify.a_slew a.Sta.slew
                && abs.Verify.a_edge = a.Sta.edge)
            then incr violations)
        report.Sta.arrivals
    done;
    !violations
  in
  let viol_prox = check_mode Sta.Proximity v_prox in
  let viol_classic = check_mode Sta.Classic (verify_of Sta.Classic) in
  let sound = viol_prox = 0 && viol_classic = 0 in
  Printf.printf
    "  soundness: %d randomized concrete analyses per mode, violations: \
     proximity %d, classic %d\n"
    trials viol_prox viol_classic;
  (* pruning: bit-identity and wall-clock payoff on the nominal events *)
  let prune = Verify.prune_mask v_prox in
  let run_trials prune_opt =
    let n = if !quick then 5 else 20 in
    let times = Array.make n 0. in
    let ir =
      Sta.build_ir ~mode:Sta.Proximity ?prune:prune_opt ~models
        ~thresholds:c.th design ~pi
    in
    for t = 0 to n - 1 do
      let t0 = Unix.gettimeofday () in
      ignore (Sta.reanalyze ~pool ir);
      times.(t) <- Unix.gettimeofday () -. t0
    done;
    (Stats.percentile times 50., Sta.report ir, Sta.pruned_evaluations ir)
  in
  let t_full, r_full, _ = run_trials None in
  let t_pruned, r_pruned, pruned_evals =
    run_trials (Some (Prune.make ~never_proximate:prune ()))
  in
  let identical = report_bits_eq r_full r_pruned in
  let speedup = if t_pruned > 0. then t_full /. t_pruned else 1. in
  Pool.shutdown pool;
  Printf.printf
    "  VERIFY SUMMARY: prune rate %.1f%%, %d evaluations fast-pathed per \
     pass, full %.3f ms vs pruned %.3f ms (%.2fx), reports %s, intervals %s\n"
    (100. *. prune_rate)
    (pruned_evals / (if !quick then 5 else 20))
    (1e3 *. t_full) (1e3 *. t_pruned) speedup
    (if identical then "bit-identical" else "DIFFER")
    (if sound then "sound" else "VIOLATED");
  let oc = open_out "BENCH_verify.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"interval verification of a random layered design, \
     synthetic models\",\n\
    \  \"quick\": %b,\n\
    \  \"cells\": %d,\n\
    \  \"switching_cells\": %d,\n\
    \  \"never\": %d,\n\
    \  \"always\": %d,\n\
    \  \"may\": %d,\n\
    \  \"prune_rate\": %.3f,\n\
    \  \"soundness_trials_per_mode\": %d,\n\
    \  \"soundness_violations\": { \"proximity\": %d, \"classic\": %d },\n\
    \  \"sound\": %b,\n\
    \  \"bit_identical\": %b,\n\
    \  \"full_median_ms\": %.4f,\n\
    \  \"pruned_median_ms\": %.4f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"metrics\": %s\n\
     }\n"
    !quick n_cells s.Verify.switching_cells s.Verify.never s.Verify.always
    s.Verify.may prune_rate trials viol_prox viol_classic sound identical
    (1e3 *. t_full) (1e3 *. t_pruned) speedup (metrics_json ());
  close_out oc;
  Printf.printf "  wrote BENCH_verify.json\n"

(* ------------------------------------------------------------------ *)
(* Static hazard analysis: §6 classification of a randomized design,
   edge-window soundness against the concrete STA, and the quiet-cell
   pruning payoff.  Writes BENCH_hazard.json.                          *)

module Hazard = Proxim_hazard.Hazard

let hazard_bench () =
  let c = Lazy.force ctx in
  section "Static hazard analysis: §6 classification and quiet-cell pruning";
  let depth = 4 and width = if !quick then 40 else 110 in
  let rng = Prng.create 0x6A2A12DL in
  let design = random_layered_design rng ~tech:c.tech ~depth ~width in
  let n_cells = List.length (Design.cells design) in
  let factory = Sta.synthetic_factory () in
  let models = factory.Sta.models in
  let pi =
    List.filter_map
      (fun net ->
        if Prng.int rng ~lo:0 ~hi:1 = 0 then None
        else
          Some
            ( net,
              {
                Sta.time = Prng.float rng ~lo:0. ~hi:800e-12;
                slew = Prng.float rng ~lo:150e-12 ~hi:600e-12;
                edge = Measure.Fall;
              } ))
      (Design.primary_inputs design)
  in
  (* the classification showcase flips a coin per input edge — the
     abstract analyzer orders glitches that a single concrete vector
     cannot, so only the hazard pass sees this stimulus *)
  let pi_mixed =
    List.map
      (fun (net, (a : Sta.arrival)) ->
        ( net,
          {
            a with
            Sta.edge =
              (if Prng.int rng ~lo:0 ~hi:1 = 0 then Measure.Rise
               else Measure.Fall);
          } ))
      pi
  in
  let time_window = 40e-12 and tau_window = 20e-12 in
  let events = List.map (Verify.of_sta_event ~time_window ~tau_window) pi in
  let events_mixed =
    List.map (Verify.of_sta_event ~time_window ~tau_window) pi_mixed
  in
  let t0 = Unix.gettimeofday () in
  let s = Hazard.summary (Hazard.analyze ~models ~thresholds:c.th design ~pi:events_mixed) in
  let analyze_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
  (* the soundness and pruning halves ride the all-fall stimulus, where
     the concrete single-vector STA is defined *)
  let h = Hazard.analyze ~models ~thresholds:c.th design ~pi:events in
  Printf.printf
    "  design: %d cells, %d window-bearing, %d constrained of %d primary \
     inputs (±%.0f ps time, ±%.0f ps tau windows), analysis %.3f ms\n"
    n_cells s.Hazard.classified (List.length pi)
    (List.length (Design.primary_inputs design))
    (ps time_window) (ps tau_window) analyze_ms;
  Printf.printf
    "  classification: never %d / filtered %d / may-glitch %d (%d \
     observable at endpoints)\n"
    s.Hazard.never s.Hazard.filtered s.Hazard.may_glitch s.Hazard.observable;
  (* soundness: randomized concrete analyses must land inside the per-edge
     windows of every switching net *)
  let pool = Pool.create ~domains:1 in
  let trials = if !quick then 20 else 100 in
  let draw_rng = Prng.create 0xD12BL in
  let violations = ref 0 in
  for _ = 1 to trials do
    let concrete_pi =
      List.map
        (fun (net, (a : Sta.arrival)) ->
          ( net,
            {
              a with
              Sta.time =
                Prng.float draw_rng ~lo:(a.Sta.time -. time_window)
                  ~hi:(a.Sta.time +. time_window);
              slew =
                Prng.float draw_rng ~lo:(a.Sta.slew -. tau_window)
                  ~hi:(a.Sta.slew +. tau_window);
            } ))
        pi
    in
    let report =
      Sta.analyze ~mode:Sta.Proximity ~pool ~models ~thresholds:c.th design
        ~pi:concrete_pi
    in
    List.iter
      (fun (net, (a : Sta.arrival)) ->
        match Hazard.net_state h ~net with
        | None -> incr violations
        | Some ns ->
          let win =
            match a.Sta.edge with
            | Measure.Rise -> ns.Hazard.ns_rise
            | Measure.Fall -> ns.Hazard.ns_fall
          in
          (match win with
          | None -> incr violations
          | Some w ->
            if
              not
                (Interval.contains w.Hazard.w_time a.Sta.time
                && Interval.contains w.Hazard.w_slew a.Sta.slew)
            then incr violations))
      report.Sta.arrivals
  done;
  let sound = !violations = 0 in
  Printf.printf
    "  soundness: %d randomized concrete analyses, %d window violations\n"
    trials !violations;
  (* quiet-cell pruning: bit-identity and wall-clock payoff *)
  let mask = Hazard.quiet_mask h in
  let quiet_cells = List.length (List.filter mask (Design.cells design)) in
  let prune_rate =
    if n_cells = 0 then 0. else float_of_int quiet_cells /. float_of_int n_cells
  in
  let run_trials prune_opt =
    let n = if !quick then 5 else 20 in
    let times = Array.make n 0. in
    let ir =
      Sta.build_ir ~mode:Sta.Proximity ?prune:prune_opt ~models
        ~thresholds:c.th design ~pi
    in
    for t = 0 to n - 1 do
      let t0 = Unix.gettimeofday () in
      ignore (Sta.reanalyze ~pool ir);
      times.(t) <- Unix.gettimeofday () -. t0
    done;
    (Stats.percentile times 50., Sta.report ir, Sta.pruned_evaluations ir)
  in
  let t_full, r_full, _ = run_trials None in
  let t_pruned, r_pruned, pruned_evals =
    run_trials (Some (Prune.make ~quiet:mask ()))
  in
  let identical = report_bits_eq r_full r_pruned in
  if not identical then begin
    (* name the diverging nets and the quiet verdicts of their drivers *)
    let by_cell = Hashtbl.create 64 in
    List.iter
      (fun (cl : Design.cell) -> Hashtbl.replace by_cell cl.Design.output_net cl)
      (Design.cells design);
    List.iter2
      (fun (n1, (a1 : Sta.arrival)) (_, (a2 : Sta.arrival)) ->
        if not (arrival_bits_eq a1 a2) then begin
          let quiet =
            match Hashtbl.find_opt by_cell n1 with
            | Some cl -> if mask cl then " (driver marked quiet!)" else ""
            | None -> " (primary input)"
          in
          Printf.printf
            "  DIVERGES %s%s: full %.17g/%.17g pruned %.17g/%.17g\n" n1 quiet
            a1.Sta.time a1.Sta.slew a2.Sta.time a2.Sta.slew;
          (match Hashtbl.find_opt by_cell n1 with
          | Some cl when mask cl ->
            Printf.printf "    cell %s gate %s inputs:\n" cl.Design.name
              cl.Design.gate.Gate.name;
            Array.iter
              (fun net ->
                let conc =
                  match List.assoc_opt net pi with
                  | Some (a : Sta.arrival) ->
                    Printf.sprintf "event %.1f ps / %.1f ps %s"
                      (1e12 *. a.Sta.time) (1e12 *. a.Sta.slew)
                      (match a.Sta.edge with
                      | Measure.Rise -> "rise"
                      | Measure.Fall -> "fall")
                  | None -> "quiet"
                in
                let wins =
                  match Hazard.net_state h ~net with
                  | None -> "no state"
                  | Some ns ->
                    let w tag = function
                      | None -> ""
                      | Some (aw : Hazard.awin) ->
                        Printf.sprintf " %s[%.1f,%.1f]ps" tag
                          (1e12 *. Interval.lo aw.Hazard.w_time)
                          (1e12 *. Interval.hi aw.Hazard.w_time)
                    in
                    (w "R" ns.Hazard.ns_rise ^ w "F" ns.Hazard.ns_fall)
                in
                Printf.printf "      %s: %s |%s\n" net conc wins)
              cl.Design.input_nets
          | _ -> ())
        end)
      r_full.Sta.arrivals r_pruned.Sta.arrivals
  end;
  let speedup = if t_pruned > 0. then t_full /. t_pruned else 1. in
  Pool.shutdown pool;
  Printf.printf
    "  HAZARD SUMMARY: quiet-mask rate %.1f%%, %d evaluations fast-pathed \
     per pass, full %.3f ms vs pruned %.3f ms (%.2fx), reports %s, windows %s\n"
    (100. *. prune_rate)
    (pruned_evals / (if !quick then 5 else 20))
    (1e3 *. t_full) (1e3 *. t_pruned) speedup
    (if identical then "bit-identical" else "DIFFER")
    (if sound then "sound" else "VIOLATED");
  let oc = open_out "BENCH_hazard.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"section-6 hazard analysis of a random layered \
     design, synthetic models\",\n\
    \  \"quick\": %b,\n\
    \  \"cells\": %d,\n\
    \  \"classified\": %d,\n\
    \  \"never\": %d,\n\
    \  \"filtered\": %d,\n\
    \  \"may_glitch\": %d,\n\
    \  \"observable\": %d,\n\
    \  \"analyze_ms\": %.4f,\n\
    \  \"soundness_trials\": %d,\n\
    \  \"soundness_violations\": %d,\n\
    \  \"sound\": %b,\n\
    \  \"quiet_cells\": %d,\n\
    \  \"quiet_rate\": %.3f,\n\
    \  \"bit_identical\": %b,\n\
    \  \"full_median_ms\": %.4f,\n\
    \  \"pruned_median_ms\": %.4f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"metrics\": %s\n\
     }\n"
    !quick n_cells s.Hazard.classified s.Hazard.never s.Hazard.filtered
    s.Hazard.may_glitch s.Hazard.observable analyze_ms trials !violations
    sound quiet_cells prune_rate identical (1e3 *. t_full) (1e3 *. t_pruned)
    speedup (metrics_json ());
  close_out oc;
  Printf.printf "  wrote BENCH_hazard.json\n"

(* ------------------------------------------------------------------ *)
(* Static sensitization: ternary classification of a randomized design,
   implication soundness against concrete two-frame simulation, the
   May-to-Never refinement payoff and the fused prune engine.  Writes
   BENCH_sense.json.                                                   *)

module Sense = Proxim_sense.Sense
module Netlist_text = Proxim_sta.Netlist_text

(* exact two-frame boolean simulation of a whole design — the golden
   reference the Unsensitizable verdicts are drawn against *)
let sense_sim_frames design stim =
  let g = Design.graph design in
  let n = Graph.net_count g in
  let init = Array.make n false and final = Array.make n false in
  List.iter
    (fun (net, (i0, f0)) ->
      match Graph.net_id g net with
      | Some id ->
        init.(id) <- i0;
        final.(id) <- f0
      | None -> ())
    stim;
  Array.iter
    (fun cid ->
      let cell : Design.cell = Graph.payload g cid in
      let ins = Graph.cell_inputs g cid in
      let o = Graph.cell_output g cid in
      init.(o) <-
        Sense.eval_gate_bool cell.Design.gate (fun p -> init.(ins.(p)));
      final.(o) <-
        Sense.eval_gate_bool cell.Design.gate (fun p -> final.(ins.(p))))
    (Graph.topological g);
  fun net ->
    let id = Option.get (Graph.net_id g net) in
    init.(id) <> final.(id)

(* draw random concrete assignments of the free PIs for every pair the
   engine proved Unsensitizable; returns (draws, violations) *)
let sense_soundness rng design s ~stim ~draws_per_pair =
  let pis = Design.primary_inputs design in
  let free = List.filter (fun n -> not (List.mem_assoc n stim)) pis in
  let pinned =
    List.filter_map
      (fun (net, st) ->
        match st with
        | Sense.Switch Measure.Rise -> Some (net, (false, true))
        | Sense.Switch Measure.Fall -> Some (net, (true, false))
        | Sense.Const b -> Some (net, (b, b))
        | Sense.Pulse -> None)
      stim
  in
  let by_name = Hashtbl.create 64 in
  List.iter
    (fun (cl : Design.cell) -> Hashtbl.replace by_name cl.Design.name cl)
    (Design.cells design);
  let checked = ref 0 and violations = ref 0 in
  List.iter
    (fun ci ->
      let cell = Hashtbl.find by_name ci.Sense.sc_name in
      List.iter
        (fun p ->
          match p.Sense.sp_decision with
          | Sense.Unsensitizable _ ->
            let na = cell.Design.input_nets.(p.Sense.sp_a) in
            let nb = cell.Design.input_nets.(p.Sense.sp_b) in
            for _ = 1 to draws_per_pair do
              incr checked;
              let assignment =
                pinned
                @ List.map
                    (fun net ->
                      let b = Prng.int rng ~lo:0 ~hi:1 = 1 in
                      (net, (b, b)))
                    free
              in
              let changed = sense_sim_frames design assignment in
              if changed na && changed nb then incr violations
            done
          | _ -> ())
        ci.Sense.sc_pairs)
    (Sense.cells s);
  (!checked, !violations)

let sense_bench () =
  let c = Lazy.force ctx in
  section "Static sensitization: implication engine and the fused prune mask";
  let depth = 4 and width = if !quick then 30 else 80 in
  let rng = Prng.create 0x5E45E1L in
  let base = random_layered_design rng ~tech:c.tech ~depth ~width in
  let nand2 = Gate.nand c.tech ~fan_in:2 in
  let inverter = Gate.inverter c.tech in
  (* graft witness structures so each prune source provably contributes
     something the others miss (the strictness half of the gate):
     - gassist: two falling inputs separated just past the exact
       dominance window — the point-event verification proves the cell
       Never-proximate, but the hazard pass sees +/-40 ps placement
       windows, cannot re-prove dominance, and keeps it out of the
       quiet mask; both pins carry events, so the sense mask keeps it
       too.  Only the never-proximate source prunes it.
     - ghalf: one switching, one quiet input — the quiet and sense masks
       cover it, the interval verification never classifies it;
     - gfar: two rising inputs 50 ns apart — a gating (latest-wins)
       input group that no mask may touch, keeping the denominators
       honest;
     - gr1..gr4: the a/q reconvergence whose gr4 pair the implication
       engine proves unsensitizable — the May-to-Never conversion and a
       guaranteed soundness-draw target. *)
  let gadget_cells =
    [
      { Design.name = "gassist"; gate = nand2;
        input_nets = [| "gas_a"; "gas_b" |]; output_net = "gas_z" };
      { Design.name = "gfar"; gate = nand2;
        input_nets = [| "gfar_a"; "gfar_b" |]; output_net = "gfar_z" };
      { Design.name = "ghalf"; gate = nand2;
        input_nets = [| "ghalf_a"; "ghalf_b" |]; output_net = "ghalf_z" };
      { Design.name = "gr1"; gate = inverter; input_nets = [| "gq" |];
        output_net = "gqn" };
      { Design.name = "gr2"; gate = nand2; input_nets = [| "ga"; "gq" |];
        output_net = "gx1" };
      { Design.name = "gr3"; gate = nand2; input_nets = [| "ga"; "gqn" |];
        output_net = "gx2" };
      { Design.name = "gr4"; gate = nand2; input_nets = [| "gx1"; "gx2" |];
        output_net = "gr_z" };
    ]
  in
  let design =
    Design.create
      ~cells:(Design.cells base @ gadget_cells)
      ~primary_inputs:
        (Design.primary_inputs base
        @ [ "gas_a"; "gas_b"; "gfar_a"; "gfar_b"; "ghalf_a"; "ghalf_b";
            "gq"; "ga" ])
      ~primary_outputs:
        (Design.primary_outputs base
        @ [ "gas_z"; "gfar_z"; "ghalf_z"; "gr_z" ])
  in
  let n_cells = List.length (Design.cells design) in
  let factory = Sta.synthetic_factory () in
  let models = factory.Sta.models in
  let ev ?(edge = Measure.Fall) ?slew net time =
    let slew =
      match slew with
      | Some s -> s
      | None -> Prng.float rng ~lo:150e-12 ~hi:600e-12
    in
    (net, { Sta.time; slew; edge })
  in
  (* gassist pin separation: just past the exact single-input response
     window (d1 + t1 at the pin-0 slew), so the degenerate-interval
     verification proves dominance while the +/-40 ps hazard windows
     leave a gap strictly inside the window and dominance fails there *)
  let gas_slew = 300e-12 in
  let gas_sep =
    let cell =
      List.find (fun c0 -> c0.Design.name = "gassist") (Design.cells design)
    in
    let m = models cell in
    let _, d_hi =
      Models.delay1_bounds m ~pin:0 ~edge:Measure.Fall
        ~tau:(gas_slew, gas_slew)
    in
    let _, t_hi =
      Models.trans1_bounds m ~pin:0 ~edge:Measure.Fall
        ~tau:(gas_slew, gas_slew)
    in
    (1.02 *. (d_hi +. t_hi)) +. 10e-12
  in
  let pi =
    List.filter_map
      (fun net ->
        if Prng.int rng ~lo:0 ~hi:1 = 0 then None
        else Some (ev net (Prng.float rng ~lo:0. ~hi:800e-12)))
      (Design.primary_inputs base)
    @ [ ev ~slew:gas_slew "gas_a" 0.; ev ~slew:gas_slew "gas_b" gas_sep;
        ev ~edge:Measure.Rise "gfar_a" 0.;
        ev ~edge:Measure.Rise "gfar_b" 50e-9; ev "ghalf_a" 100e-12;
        ev "ga" 100e-12 ]
  in
  let stim_of pi =
    List.map (fun (n, (a : Sta.arrival)) -> (n, Sense.Switch a.Sta.edge)) pi
  in
  let events = List.map Verify.of_sta_event pi in
  (* the hazard pass gets placement/slew windows around the same events:
     sound for the point stimulus, but deliberately too coarse to
     re-prove gassist's dominance *)
  let events_h =
    List.map
      (Verify.of_sta_event ~time_window:40e-12 ~tau_window:20e-12)
      pi
  in
  let stim = stim_of pi in
  let t0 = Unix.gettimeofday () in
  let s = Sense.analyze design ~pi:stim in
  let analyze_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
  let sum = Sense.summary s in
  Printf.printf
    "  design: %d cells (+7 grafted witnesses), %d switching of %d primary \
     inputs, sensitization pass %.3f ms\n"
    n_cells (List.length pi)
    (List.length (Design.primary_inputs design))
    analyze_ms;
  Printf.printf
    "  classification: %d cells / %d pairs — %d sensitizable, %d \
     unsensitizable, %d exhausted; %d derived constants, %d false-path \
     cells\n"
    sum.Sense.classified_cells sum.Sense.pairs sum.Sense.sensitizable
    sum.Sense.unsensitizable sum.Sense.exhausted sum.Sense.constant_nets
    sum.Sense.false_path_cells;
  (* May-to-Never conversion through the interval verification *)
  let v = Verify.analyze ~models ~thresholds:c.th design ~pi:events in
  let h = Hazard.analyze ~models ~thresholds:c.th design ~pi:events_h in
  let before = Verify.summary v in
  let v', refd = Verify.refine v ~unsensitizable:(Sense.pair_unsensitizable s) in
  let after = Verify.summary v' in
  Printf.printf
    "  refinement: %d pairs / %d cells converted May-to-Never (may %d -> \
     %d)\n"
    refd.Verify.refined_pairs refd.Verify.refined_cells before.Verify.may
    after.Verify.may;
  (* soundness: concrete two-frame draws against every proven pair; the
     per-pair count adapts so the total always clears the gate's floor *)
  let draw_rng = Prng.create 0xD4A15L in
  let n_unsens = sum.Sense.unsensitizable in
  let draws_per_pair = max 20 (200 / max 1 n_unsens) in
  let draws, violations =
    sense_soundness draw_rng design s ~stim ~draws_per_pair
  in
  (* the prune masks, solo and fused *)
  let cells = Design.cells design in
  let count mask = List.length (List.filter mask cells) in
  let n_sense = count (Sense.prune_mask s) in
  let n_quiet = count (Hazard.quiet_mask h) in
  let n_never = count (Verify.prune_mask v) in
  let fused_of () =
    Prune.make
      ~unsensitizable:(Sense.prune_mask s)
      ~quiet:(Hazard.quiet_mask h)
      ~never_proximate:(Verify.prune_mask v)
      ()
  in
  let n_fused = count (Prune.member (fused_of ())) in
  let strictly_best =
    n_fused > n_sense && n_fused > n_quiet && n_fused > n_never
  in
  let pct n = 100. *. float_of_int n /. float_of_int n_cells in
  Printf.printf
    "  prune masks: unsensitizable %d (%.1f%%), quiet %d (%.1f%%), \
     never-proximate %d (%.1f%%), fused %d (%.1f%%)%s\n"
    n_sense (pct n_sense) n_quiet (pct n_quiet) n_never (pct n_never) n_fused
    (pct n_fused)
    (if strictly_best then " — fused strictly widest" else " — NOT strict");
  (* bit-identity and wall-clock payoff on the main design *)
  let pool = Pool.create ~domains:1 in
  let run_trials prune_opt =
    let n = if !quick then 5 else 20 in
    let times = Array.make n 0. in
    let ir =
      Sta.build_ir ~mode:Sta.Proximity ?prune:prune_opt ~models
        ~thresholds:c.th design ~pi
    in
    for t = 0 to n - 1 do
      let t0 = Unix.gettimeofday () in
      ignore (Sta.reanalyze ~pool ir);
      times.(t) <- Unix.gettimeofday () -. t0
    done;
    (Stats.percentile times 50., Sta.report ir, Sta.pruned_evaluations ir)
  in
  let t_full, r_full, _ = run_trials None in
  let fused = fused_of () in
  let t_fused, r_fused, fused_evals = run_trials (Some fused) in
  let counts = Prune.counts fused in
  let identical = ref (report_bits_eq r_full r_fused) in
  let designs_checked = ref 1 in
  (* ... and across independent random designs and every example netlist *)
  let check_design design pi =
    let events = List.map Verify.of_sta_event pi in
    let v = Verify.analyze ~models ~thresholds:c.th design ~pi:events in
    let h = Hazard.analyze ~models ~thresholds:c.th design ~pi:events in
    let s = Sense.analyze design ~pi:(stim_of pi) in
    let fused =
      Prune.make
        ~unsensitizable:(Sense.prune_mask s)
        ~quiet:(Hazard.quiet_mask h)
        ~never_proximate:(Verify.prune_mask v)
        ()
    in
    let run prune_opt =
      let ir =
        Sta.build_ir ~mode:Sta.Proximity ?prune:prune_opt ~models
          ~thresholds:c.th design ~pi
      in
      ignore (Sta.reanalyze ~pool ir);
      Sta.report ir
    in
    let full = run None in
    let pruned = run (Some fused) in
    incr designs_checked;
    if not (report_bits_eq full pruned) then identical := false
  in
  for _ = 1 to 10 do
    let d = random_layered_design rng ~tech:c.tech ~depth:3 ~width:20 in
    let pi =
      List.filter_map
        (fun net ->
          if Prng.int rng ~lo:0 ~hi:1 = 0 then None
          else Some (ev net (Prng.float rng ~lo:0. ~hi:800e-12)))
        (Design.primary_inputs d)
    in
    check_design d pi
  done;
  List.iter
    (fun file ->
      if Sys.file_exists file then
        match Netlist_text.parse_file c.tech file with
        | Error _ -> () (* lint fodder; not a loadable design *)
        | Ok (_, d) ->
          (* an all-input stimulus when the reconvergence parities allow
             it, else one event per run — the single-vector STA refuses
             to order mixed edges at a cell *)
          let all =
            List.mapi
              (fun i net -> ev net (float_of_int i *. 50e-12))
              (Design.primary_inputs d)
          in
          (try check_design d all
           with Sta.Mixed_input_edges _ ->
             List.iter
               (fun e ->
                 try check_design d [ e ] with Sta.Mixed_input_edges _ -> ())
               all))
    [
      "examples/carry_tree.ntl"; "examples/hazard_demo.ntl";
      "examples/lint_demo.ntl"; "examples/sense_demo.ntl";
      "examples/verify_demo.ntl";
    ];
  Pool.shutdown pool;
  let speedup = if t_fused > 0. then t_full /. t_fused else 1. in
  let sound = violations = 0 in
  Printf.printf
    "  SENSE SUMMARY: %d soundness draws (%d violations), %d designs \
     bit-checked, %d evaluations fast-pathed per pass (%d/%d/%d by source), \
     full %.3f ms vs fused %.3f ms (%.2fx), reports %s\n"
    draws violations !designs_checked
    (fused_evals / (if !quick then 5 else 20))
    counts.Prune.unsensitizable counts.Prune.quiet counts.Prune.never_proximate
    (1e3 *. t_full) (1e3 *. t_fused) speedup
    (if !identical then "bit-identical" else "DIFFER");
  let oc = open_out "BENCH_sense.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"static sensitization of a random layered design \
     with grafted witness structures, synthetic models\",\n\
    \  \"quick\": %b,\n\
    \  \"cells\": %d,\n\
    \  \"classified_cells\": %d,\n\
    \  \"pairs\": %d,\n\
    \  \"sensitizable\": %d,\n\
    \  \"unsensitizable\": %d,\n\
    \  \"exhausted\": %d,\n\
    \  \"constant_nets\": %d,\n\
    \  \"false_path_cells\": %d,\n\
    \  \"analyze_ms\": %.4f,\n\
    \  \"refined_pairs\": %d,\n\
    \  \"refined_cells\": %d,\n\
    \  \"may_before\": %d,\n\
    \  \"may_after\": %d,\n\
    \  \"soundness_draws\": %d,\n\
    \  \"soundness_violations\": %d,\n\
    \  \"sound\": %b,\n\
    \  \"sense_cells\": %d,\n\
    \  \"quiet_cells\": %d,\n\
    \  \"never_cells\": %d,\n\
    \  \"fused_cells\": %d,\n\
    \  \"fused_rate\": %.4f,\n\
    \  \"fused_strictly_best\": %b,\n\
    \  \"designs_checked\": %d,\n\
    \  \"bit_identical\": %b,\n\
    \  \"full_median_ms\": %.4f,\n\
    \  \"fused_median_ms\": %.4f,\n\
    \  \"speedup\": %.3f,\n\
    \  \"metrics\": %s\n\
     }\n"
    !quick n_cells sum.Sense.classified_cells sum.Sense.pairs
    sum.Sense.sensitizable sum.Sense.unsensitizable sum.Sense.exhausted
    sum.Sense.constant_nets sum.Sense.false_path_cells analyze_ms
    refd.Verify.refined_pairs refd.Verify.refined_cells before.Verify.may
    after.Verify.may draws violations sound n_sense n_quiet n_never n_fused
    (float_of_int n_fused /. float_of_int n_cells)
    strictly_best !designs_checked !identical (1e3 *. t_full)
    (1e3 *. t_fused) speedup (metrics_json ());
  close_out oc;
  Printf.printf "  wrote BENCH_sense.json\n"

(* ------------------------------------------------------------------ *)
(* The serve daemon under concurrent sessions: ECO/query latency
   percentiles, response bit-identity against the offline engine, and
   survival of adversarial frames.  Writes BENCH_serve.json.           *)

module Serve = Proxim_serve.Serve
module Frame = Proxim_serve.Frame
module Sjson = Proxim_lint.Json

(* percentile over a metrics histogram (log10-seconds axis): walk the
   merged bins to the target rank and interpolate inside the bin *)
let hist_percentile (h : Obs_metrics.hist_snapshot) p =
  if h.count = 0 then 0.
  else begin
    let target = float_of_int h.count *. p /. 100. in
    let hist = h.hist in
    let edges = Histogram.bin_edges hist in
    let cum = ref (float_of_int hist.Histogram.underflow) in
    let res = ref h.max in
    (try
       Array.iteri
         (fun i c ->
           let c = float_of_int c in
           if !cum +. c >= target && c > 0. then begin
             let frac = (target -. !cum) /. c in
             res := 10. ** (edges.(i) +. (frac *. (edges.(i + 1) -. edges.(i))));
             raise Exit
           end
           else cum := !cum +. c)
         hist.Histogram.counts
     with Exit -> ());
    Float.min !res (if h.max > 0. then h.max else !res)
  end

let serve_rpc fd req =
  match Serve.request fd req with
  | Ok j when Serve.ok j -> j
  | Ok j -> failwith ("serve bench: request rejected: " ^ Sjson.to_string j)
  | Error m -> failwith ("serve bench: " ^ m)

let serve_bench () =
  section "proxim serve: concurrent sessions over the ECO engine";
  let cells = if !quick then 2_000 else 10_000 in
  let sessions = 4 in
  let rounds = if !quick then 10 else 30 in
  let seed = 7 and depth = 4 in
  let tech = Tech.generic_5v in

  (* the deterministic per-round ECO script every session replays *)
  let eco_at r =
    let net = Printf.sprintf "pi%d" (r mod 17) in
    Sta.Set_pi
      ( net,
        Some
          {
            Sta.time = float_of_int (r + 1) *. 3e-12;
            slew = 250e-12 +. (float_of_int (r mod 5) *. 10e-12);
            edge = Measure.Fall;
          } )
  in

  (* offline reference: the same design, stimulus and ECO script through
     the same engine entry points the daemon calls *)
  subsection "offline reference";
  let _name, design = Synthgen.generate ~seed ~depth ~tech ~cells () in
  let factory = Sta.synthetic_factory ~seed:0 () in
  let thresholds =
    match Design.cells design with
    | c :: _ -> Vtc.thresholds c.Design.gate
    | [] -> failwith "generated design has no cells"
  in
  let pi =
    List.map
      (fun net ->
        (net, { Sta.time = 0.; slew = 300e-12; edge = Measure.Fall }))
      (Design.primary_inputs design)
  in
  let ir =
    Sta.build_ir ~mode:Sta.Proximity ~models:factory.Sta.models ~thresholds
      design ~pi
  in
  ignore (Sta.reanalyze ir : Timing.stats);
  for r = 0 to rounds - 1 do
    ignore (Sta.update ir [ eco_at r ] : Timing.stats)
  done;
  let offline = Sta.report ir in
  Printf.printf "  %d cells, %d rounds scripted\n" cells rounds;

  subsection (Printf.sprintf "%d concurrent sessions" sessions);
  let srv = Serve.start (`Tcp ("127.0.0.1", 0)) in
  let addr = `Tcp ("127.0.0.1", Option.get (Serve.port srv)) in
  let gen_req =
    Sjson.Obj
      [
        ("op", Sjson.String "gen");
        ("cells", Sjson.Number (float_of_int cells));
        ("depth", Sjson.Number (float_of_int depth));
        ("seed", Sjson.Number (float_of_int seed));
        ("name", Sjson.String "bench");
      ]
  in
  let attach_req =
    Sjson.Obj
      [
        ("op", Sjson.String "attach");
        ("design", Sjson.String "bench");
        ("mode", Sjson.String "proximity");
        ("models", Sjson.String "synthetic");
        ( "pi_all",
          Serve.arrival_to_json
            { Sta.time = 0.; slew = 300e-12; edge = Measure.Fall } );
      ]
  in
  let eco_req r =
    let kind, fields =
      match eco_at r with
      | Sta.Set_pi (net, Some a) ->
        ( "set_pi",
          [ ("net", Sjson.String net); ("arrival", Serve.arrival_to_json a) ]
        )
      | Sta.Set_pi (net, None) ->
        ("set_pi", [ ("net", Sjson.String net); ("arrival", Sjson.Null) ])
      | Sta.Touch_cell c -> ("touch_cell", [ ("cell", Sjson.String c) ])
    in
    Sjson.Obj
      [
        ("op", Sjson.String "eco");
        ( "ecos",
          Sjson.List [ Sjson.Obj (("kind", Sjson.String kind) :: fields) ] );
      ]
  in
  (* one connection loads the shared design into the store *)
  let fd0 = Serve.connect addr in
  ignore (serve_rpc fd0 gen_req : Sjson.t);
  Unix.close fd0;
  let eco_ts = Array.make (sessions * rounds) 0. in
  let query_ts = Array.make (sessions * rounds) 0. in
  let finals = Array.make sessions None in
  let session s () =
    let fd = Serve.connect addr in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        ignore (serve_rpc fd attach_req : Sjson.t);
        for r = 0 to rounds - 1 do
          let t0 = Unix.gettimeofday () in
          ignore (serve_rpc fd (eco_req r) : Sjson.t);
          eco_ts.((s * rounds) + r) <- Unix.gettimeofday () -. t0;
          let t0 = Unix.gettimeofday () in
          let resp =
            serve_rpc fd (Sjson.Obj [ ("op", Sjson.String "report") ])
          in
          query_ts.((s * rounds) + r) <- Unix.gettimeofday () -. t0;
          if r = rounds - 1 then
            finals.(s) <-
              (match
                 Option.map Serve.report_of_json (Sjson.member "report" resp)
               with
               | Some (Ok rep) -> Some rep
               | _ -> None)
        done)
  in
  let threads = List.init sessions (fun s -> Thread.create (session s) ()) in
  List.iter Thread.join threads;
  let bit_identical =
    Array.for_all
      (function Some r -> report_bits_eq r offline | None -> false)
      finals
  in
  let p a q = 1e3 *. Stats.percentile a q in
  Printf.printf "  eco   p50 %.3f ms  p99 %.3f ms\n" (p eco_ts 50.)
    (p eco_ts 99.);
  Printf.printf "  query p50 %.3f ms  p99 %.3f ms\n" (p query_ts 50.)
    (p query_ts 99.);
  Printf.printf "  responses bit-identical to offline: %b\n" bit_identical;

  subsection "adversarial client";
  (* garbage JSON, an oversized length claim and a mid-frame disconnect:
     each gets a typed error (or a dropped session) and the daemon keeps
     answering *)
  let adversarial_survived =
    try
      let fd = Serve.connect addr in
      Frame.write fd "not json at all";
      let bad_json_typed =
        match Frame.read fd with
        | Ok s -> (
          match Sjson.of_string s with
          | Ok j -> Serve.error_code j = Some "bad_json"
          | Error _ -> false)
        | Error _ -> false
      in
      ignore (serve_rpc fd (Sjson.Obj [ ("op", Sjson.String "ping") ]));
      Unix.close fd;
      let fd = Serve.connect addr in
      ignore (Unix.write fd (Bytes.of_string "\x7f\xff\xff\xff") 0 4 : int);
      let oversized_typed =
        match Frame.read fd with
        | Ok s -> (
          match Sjson.of_string s with
          | Ok j -> Serve.error_code j = Some "bad_frame"
          | Error _ -> false)
        | Error _ -> false
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let fd = Serve.connect addr in
      ignore (Unix.write fd (Bytes.of_string "\x00\x02") 0 2 : int);
      Unix.close fd;
      let fd = Serve.connect addr in
      ignore (serve_rpc fd (Sjson.Obj [ ("op", Sjson.String "ping") ]));
      Unix.close fd;
      bad_json_typed && oversized_typed
    with _ -> false
  in
  Printf.printf "  survived with typed errors: %b\n" adversarial_survived;

  (* server-side latency distributions from the metrics registry *)
  let snap = Obs_metrics.snapshot () in
  let hist name =
    match List.assoc_opt name snap.Obs_metrics.histograms with
    | Some h -> h
    | None -> failwith ("serve bench: no histogram " ^ name)
  in
  let h_eco = hist "serve.eco_seconds" in
  let h_query = hist "serve.query_seconds" in
  let total_requests =
    match List.assoc_opt "serve.requests" snap.Obs_metrics.counters with
    | Some n -> n
    | None -> 0
  in
  Printf.printf
    "  server-side eco   p50 %.3f ms  p99 %.3f ms  (%d observed)\n"
    (1e3 *. hist_percentile h_eco 50.)
    (1e3 *. hist_percentile h_eco 99.)
    h_eco.Obs_metrics.count;

  Serve.stop srv;
  Serve.wait srv;

  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc
    "{\n\
    \  \"workload\": \"generated design served to concurrent sessions, a \
     scripted ECO+report round-trip per request pair, synthetic models\",\n\
    \  \"quick\": %b,\n\
    \  \"cells\": %d,\n\
    \  \"sessions\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"requests\": %d,\n\
    \  \"bit_identical\": %b,\n\
    \  \"adversarial_survived\": %b,\n\
    \  \"eco_p50_ms\": %.4f,\n\
    \  \"eco_p99_ms\": %.4f,\n\
    \  \"query_p50_ms\": %.4f,\n\
    \  \"query_p99_ms\": %.4f,\n\
    \  \"server_eco_p50_ms\": %.4f,\n\
    \  \"server_eco_p99_ms\": %.4f,\n\
    \  \"server_query_p50_ms\": %.4f,\n\
    \  \"server_query_p99_ms\": %.4f,\n\
    \  \"metrics\": %s\n\
     }\n"
    !quick cells sessions rounds total_requests bit_identical
    adversarial_survived (p eco_ts 50.) (p eco_ts 99.) (p query_ts 50.)
    (p query_ts 99.)
    (1e3 *. hist_percentile h_eco 50.)
    (1e3 *. hist_percentile h_eco 99.)
    (1e3 *. hist_percentile h_query 50.)
    (1e3 *. hist_percentile h_query 99.)
    (metrics_json ());
  close_out oc;
  Printf.printf "  wrote BENCH_serve.json\n"

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig1_2", fig1_2);
    ("fig2_1", fig2_1);
    ("fig3_3", fig3_3);
    ("fig4_2", fig4_2);
    ("table5_1", table5_1);
    ("baseline_cmp", baseline_cmp);
    ("ablation_correction", ablation_correction);
    ("ablation_table", ablation_table);
    ("ablation_composition", ablation_composition);
    ("fig6_1", fig6_1);
    ("ablation_alpha", ablation_alpha);
    ("fanin_sweep", fanin_sweep);
    ("microbench", microbench);
    ("parallel_bench", parallel_bench);
    ("incremental_bench", incremental_bench);
    ("verify_bench", verify_bench);
    ("hazard_bench", hazard_bench);
    ("sense_bench", sense_bench);
    ("serve_bench", serve_bench);
  ]

(* ablation_correction shares its output with table5_1; avoid printing it
   twice on a full run *)
let default_run =
  List.filter (fun (name, _) -> name <> "ablation_correction") experiments

let () =
  let args =
    let rec parse acc = function
      | [] -> List.rev acc
      | "--quick" :: tl ->
        quick := true;
        parse acc tl
      | [ "--domains" ] ->
        Printf.eprintf "--domains expects an integer argument\n";
        exit 2
      | "--domains" :: n :: tl -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
          domains := n;
          parse acc tl
        | Some _ | None ->
          Printf.eprintf "--domains expects a positive integer, got %s\n" n;
          exit 2)
      | [ "--trace" ] ->
        Printf.eprintf "--trace expects a file argument\n";
        exit 2
      | "--trace" :: f :: tl ->
        trace_file := Some f;
        parse acc tl
      | "--metrics" :: "text" :: tl ->
        metrics_fmt := Some `Text;
        parse acc tl
      | "--metrics" :: "json" :: tl ->
        metrics_fmt := Some `Json;
        parse acc tl
      | "--metrics" :: _ ->
        Printf.eprintf "--metrics expects text or json\n";
        exit 2
      | a :: tl -> parse (a :: acc) tl
    in
    parse [] (List.tl (Array.to_list Sys.argv))
  in
  Pool.set_default_domains !domains;
  Obs_metrics.install_util_sources ();
  if !trace_file <> None then Obs_trace.enable ();
  let selected =
    match args with
    | [] -> default_run
    | names ->
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some fn -> (name, fn)
          | None ->
            Printf.eprintf "unknown experiment %s; available: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
        names
  in
  let t_total = Unix.gettimeofday () in
  List.iter
    (fun (name, fn) ->
      let t0 = Unix.gettimeofday () in
      fn ();
      Printf.printf "\n[%s: %.1f s]\n" name (Unix.gettimeofday () -. t0))
    selected;
  Printf.printf "\ntotal wall time: %.1f s\n" (Unix.gettimeofday () -. t_total);
  (match !trace_file with
   | None -> ()
   | Some f ->
     Obs_trace.write_file f;
     Printf.printf "trace written to %s (load in ui.perfetto.dev)\n" f);
  match !metrics_fmt with
  | None -> ()
  | Some `Text -> print_string (Obs_metrics.to_text (Obs_metrics.snapshot ()))
  | Some `Json -> print_endline (metrics_json ())
