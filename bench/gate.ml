(* CI perf-regression gate.

   Compares a bench artifact (BENCH_parallel.json / BENCH_incremental.json)
   against a committed baseline in bench/baselines/, and fails the build
   when a gated metric regresses past its tolerance band.

     gate.exe parallel    bench/baselines/parallel.json    BENCH_parallel.json
     gate.exe incremental bench/baselines/incremental.json BENCH_incremental.json
     gate.exe sense       bench/baselines/sense.json       BENCH_sense.json

   Gated metrics are machine-independent where possible (speedup ratios,
   job counts, bit-identity); wall-clock-dependent floors are core-aware:
   a speedup floor for an N-domain row only applies when the artifact's
   host_cores >= N, because oversubscribed OCaml domains measure the
   stop-the-world GC penalty, not the pool.  Skipped rows are reported as
   such, never silently dropped.

   Prints an actual-vs-baseline table on stdout and, when the
   GITHUB_STEP_SUMMARY environment variable is set, appends the same
   table as markdown to that file (the Actions job summary). *)

module Json = Proxim_lint.Json

let die fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("gate: " ^ s);
      exit 2)
    fmt

let load path =
  let ic = try open_in path with Sys_error e -> die "%s" e in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Json.of_string text with
  | Ok v -> v
  | Error e -> die "%s: %s" path e

(* all lookups are fatal on absence: a missing field means the bench and
   the gate disagree about the schema, which must fail loudly *)
let mem ~ctx name j =
  match Json.member name j with
  | Some v -> v
  | None -> die "%s: missing field %S" ctx name

let num ~ctx name j =
  match Json.to_number (mem ~ctx name j) with
  | Some v -> v
  | None -> die "%s: field %S is not a number" ctx name

let boolean ~ctx name j =
  match mem ~ctx name j with
  | Json.Bool b -> b
  | _ -> die "%s: field %S is not a bool" ctx name

let list ~ctx name j =
  match Json.to_list (mem ~ctx name j) with
  | Some l -> l
  | None -> die "%s: field %S is not a list" ctx name

(* --- result table ---------------------------------------------------- *)

type status = Pass | Fail | Skip of string

type row = {
  metric : string;
  baseline : string;
  actual : string;
  status : status;
}

let rows : row list ref = ref []

let check ~metric ~baseline ~actual ok =
  rows := { metric; baseline; actual; status = (if ok then Pass else Fail) }
          :: !rows

let skip ~metric ~baseline ~actual reason =
  rows := { metric; baseline; actual; status = Skip reason } :: !rows

let status_text = function
  | Pass -> "ok"
  | Fail -> "FAIL"
  | Skip reason -> "skipped (" ^ reason ^ ")"

let print_table () =
  let all = List.rev !rows in
  let width f = List.fold_left (fun acc r -> max acc (String.length (f r))) 0 all in
  let wm = max 6 (width (fun r -> r.metric)) in
  let wb = max 8 (width (fun r -> r.baseline)) in
  let wa = max 6 (width (fun r -> r.actual)) in
  Printf.printf "  %-*s  %*s  %*s  %s\n" wm "metric" wb "baseline" wa "actual"
    "status";
  List.iter
    (fun r ->
      Printf.printf "  %-*s  %*s  %*s  %s\n" wm r.metric wb r.baseline wa
        r.actual (status_text r.status))
    all;
  match Sys.getenv_opt "GITHUB_STEP_SUMMARY" with
  | None | Some "" -> ()
  | Some path ->
    let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc "### Bench gate\n\n";
        output_string oc "| metric | baseline | actual | status |\n";
        output_string oc "| --- | --- | --- | --- |\n";
        List.iter
          (fun r ->
            Printf.fprintf oc "| `%s` | %s | %s | %s |\n" r.metric r.baseline
              r.actual
              (match r.status with
               | Pass -> "✅"
               | Fail -> "❌ regressed"
               | Skip reason -> "⏭ " ^ reason))
          all;
        output_string oc "\n")

(* --- parallel gate --------------------------------------------------- *)

let pool_jobs ~ctx j = int_of_float (num ~ctx "parallel_jobs" (mem ~ctx "pool" j))

let gate_parallel baseline actual =
  let ctx = "parallel" in
  let tolerance = num ~ctx "tolerance" baseline in
  let host_cores = int_of_float (num ~ctx "host_cores" actual) in
  let charac = mem ~ctx "characterization" actual in
  let actual_rows = list ~ctx "rows" charac in
  let find_row domains =
    List.find_opt
      (fun r -> int_of_float (num ~ctx "domains" r) = domains)
      actual_rows
  in
  List.iter
    (fun b ->
      let domains = int_of_float (num ~ctx "domains" b) in
      let min_speedup = num ~ctx "min_speedup" b in
      let min_jobs = int_of_float (num ~ctx "min_parallel_jobs" b) in
      let label = Printf.sprintf "char[%dd]" domains in
      match find_row domains with
      | None ->
        check ~metric:(label ^ ".row") ~baseline:"present" ~actual:"missing"
          false
      | Some r ->
        let ctx = label in
        check
          ~metric:(label ^ ".bit_identical")
          ~baseline:"true"
          ~actual:(string_of_bool (boolean ~ctx "bit_identical" r))
          (boolean ~ctx "bit_identical" r);
        let jobs = pool_jobs ~ctx r in
        check
          ~metric:(label ^ ".pool.parallel_jobs")
          ~baseline:(Printf.sprintf ">= %d" min_jobs)
          ~actual:(string_of_int jobs)
          (jobs >= min_jobs);
        let speedup = num ~ctx "speedup" r in
        let floor = min_speedup *. (1. -. tolerance) in
        if host_cores >= domains then
          check
            ~metric:(label ^ ".speedup")
            ~baseline:(Printf.sprintf ">= %.2f" floor)
            ~actual:(Printf.sprintf "%.2f" speedup)
            (speedup >= floor)
        else
          skip
            ~metric:(label ^ ".speedup")
            ~baseline:(Printf.sprintf ">= %.2f" floor)
            ~actual:(Printf.sprintf "%.2f" speedup)
            (Printf.sprintf "host has %d core(s)" host_cores))
    (list ~ctx "rows" baseline);
  let sta_b = mem ~ctx "sta" baseline in
  let sta_a = mem ~ctx "sta" actual in
  let ctx = "sta" in
  check ~metric:"sta.bit_identical" ~baseline:"true"
    ~actual:(string_of_bool (boolean ~ctx "bit_identical" sta_a))
    (boolean ~ctx "bit_identical" sta_a);
  let min_jobs = int_of_float (num ~ctx "min_parallel_jobs" sta_b) in
  let jobs = pool_jobs ~ctx sta_a in
  check ~metric:"sta.pool.parallel_jobs"
    ~baseline:(Printf.sprintf ">= %d" min_jobs)
    ~actual:(string_of_int jobs)
    (jobs >= min_jobs);
  let sta_domains = int_of_float (num ~ctx "domains" sta_a) in
  let speedup = num ~ctx "speedup" sta_a in
  let floor = num ~ctx "min_speedup" sta_b *. (1. -. tolerance) in
  if host_cores >= sta_domains then
    check ~metric:"sta.speedup"
      ~baseline:(Printf.sprintf ">= %.2f" floor)
      ~actual:(Printf.sprintf "%.2f" speedup)
      (speedup >= floor)
  else
    skip ~metric:"sta.speedup"
      ~baseline:(Printf.sprintf ">= %.2f" floor)
      ~actual:(Printf.sprintf "%.2f" speedup)
      (Printf.sprintf "host has %d core(s)" host_cores)

(* --- incremental gate ------------------------------------------------ *)

let gate_incremental baseline actual =
  let ctx = "incremental" in
  let tolerance = num ~ctx "tolerance" baseline in
  check ~metric:"eco.bit_identical" ~baseline:"true"
    ~actual:(string_of_bool (boolean ~ctx "bit_identical" actual))
    (boolean ~ctx "bit_identical" actual);
  (* incremental-vs-full is a ratio of two runs on the same host, so it
     is enforced everywhere *)
  let speedup = num ~ctx "median_speedup" actual in
  let floor = num ~ctx "min_median_speedup" baseline *. (1. -. tolerance) in
  check ~metric:"eco.median_speedup"
    ~baseline:(Printf.sprintf ">= %.1f" floor)
    ~actual:(Printf.sprintf "%.1f" speedup)
    (speedup >= floor);
  (* absolute ECO latency depends on the host; the slack multiplier in
     the baseline sets how much headroom CI runners get *)
  let max_ms = num ~ctx "max_incremental_median_ms" baseline in
  let slack = num ~ctx "latency_slack" baseline in
  let worst =
    List.fold_left
      (fun acc d -> Float.max acc (num ~ctx "incremental_median_ms" d))
      0.
      (list ~ctx "designs" actual)
  in
  check ~metric:"eco.incremental_median_ms"
    ~baseline:(Printf.sprintf "<= %.2f (x%.0f slack)" (max_ms *. slack) slack)
    ~actual:(Printf.sprintf "%.2f" worst)
    (worst <= max_ms *. slack);
  List.iteri
    (fun i d ->
      check
        ~metric:(Printf.sprintf "eco.designs[%d].bit_identical" i)
        ~baseline:"true"
        ~actual:(string_of_bool (boolean ~ctx "bit_identical" d))
        (boolean ~ctx "bit_identical" d))
    (list ~ctx "designs" actual);
  (* scaling rows: bit-identity and the touched-cells ratio are
     machine-independent and enforced wherever the row ran; the analyze
     latency floor is wall-clock and gets the slack multiplier.  A
     baseline size absent from the artifact (the quick bench skips the
     10^6 row) is reported as skipped, never silently dropped. *)
  let sb = mem ~ctx "scaling" baseline in
  let actual_scaling = list ~ctx "scaling" actual in
  let max_ratio = num ~ctx "max_incr_ratio" sb in
  let sslack = num ~ctx "latency_slack" sb in
  List.iter
    (fun b ->
      let cells = int_of_float (num ~ctx "cells" b) in
      let max_analyze = num ~ctx "max_analyze_ms" b in
      let label = Printf.sprintf "scale[%d]" cells in
      match
        List.find_opt
          (fun r -> int_of_float (num ~ctx "cells" r) = cells)
          actual_scaling
      with
      | None ->
        skip ~metric:(label ^ ".row") ~baseline:"present" ~actual:"missing"
          "not run (quick)"
      | Some r ->
        check
          ~metric:(label ^ ".bit_identical")
          ~baseline:"true"
          ~actual:(string_of_bool (boolean ~ctx "bit_identical" r))
          (boolean ~ctx "bit_identical" r);
        let ratio = num ~ctx "incr_ratio" r in
        check
          ~metric:(label ^ ".incr_ratio")
          ~baseline:(Printf.sprintf "<= %.3f" max_ratio)
          ~actual:(Printf.sprintf "%.4f" ratio)
          (ratio <= max_ratio);
        let analyze = num ~ctx "analyze_ms" r in
        check
          ~metric:(label ^ ".analyze_ms")
          ~baseline:
            (Printf.sprintf "<= %.0f (x%.0f slack)" (max_analyze *. sslack)
               sslack)
          ~actual:(Printf.sprintf "%.1f" analyze)
          (analyze <= max_analyze *. sslack))
    (list ~ctx "rows" sb)

(* --- sense gate ------------------------------------------------------ *)

let gate_sense baseline actual =
  let ctx = "sense" in
  let tolerance = num ~ctx "tolerance" baseline in
  (* soundness and bit-identity are correctness properties: hard gates,
     no tolerance band *)
  check ~metric:"sense.sound" ~baseline:"true"
    ~actual:(string_of_bool (boolean ~ctx "sound" actual))
    (boolean ~ctx "sound" actual);
  check ~metric:"sense.bit_identical" ~baseline:"true"
    ~actual:(string_of_bool (boolean ~ctx "bit_identical" actual))
    (boolean ~ctx "bit_identical" actual);
  check ~metric:"sense.fused_strictly_best" ~baseline:"true"
    ~actual:(string_of_bool (boolean ~ctx "fused_strictly_best" actual))
    (boolean ~ctx "fused_strictly_best" actual);
  let violations = int_of_float (num ~ctx "soundness_violations" actual) in
  check ~metric:"sense.soundness_violations" ~baseline:"0"
    ~actual:(string_of_int violations)
    (violations = 0);
  let min_draws = int_of_float (num ~ctx "min_soundness_draws" baseline) in
  let draws = int_of_float (num ~ctx "soundness_draws" actual) in
  check ~metric:"sense.soundness_draws"
    ~baseline:(Printf.sprintf ">= %d" min_draws)
    ~actual:(string_of_int draws)
    (draws >= min_draws);
  let min_checked = int_of_float (num ~ctx "min_designs_checked" baseline) in
  let checked = int_of_float (num ~ctx "designs_checked" actual) in
  check ~metric:"sense.designs_checked"
    ~baseline:(Printf.sprintf ">= %d" min_checked)
    ~actual:(string_of_int checked)
    (checked >= min_checked);
  let min_refined = int_of_float (num ~ctx "min_refined_pairs" baseline) in
  let refined = int_of_float (num ~ctx "refined_pairs" actual) in
  check ~metric:"sense.refined_pairs"
    ~baseline:(Printf.sprintf ">= %d" min_refined)
    ~actual:(string_of_int refined)
    (refined >= min_refined);
  (* the fused prune rate is a coverage ratio of two analyses of the
     same netlist, machine-independent, but the random layer mix shifts
     with the workload knobs — give it the tolerance band *)
  let rate = num ~ctx "fused_rate" actual in
  let floor = num ~ctx "min_fused_rate" baseline *. (1. -. tolerance) in
  check ~metric:"sense.fused_rate"
    ~baseline:(Printf.sprintf ">= %.3f" floor)
    ~actual:(Printf.sprintf "%.4f" rate)
    (rate >= floor)

(* --- serve gate ------------------------------------------------------ *)

let gate_serve baseline actual =
  let ctx = "serve" in
  (* correctness properties: hard gates, no tolerance band *)
  check ~metric:"serve.bit_identical" ~baseline:"true"
    ~actual:(string_of_bool (boolean ~ctx "bit_identical" actual))
    (boolean ~ctx "bit_identical" actual);
  check ~metric:"serve.adversarial_survived" ~baseline:"true"
    ~actual:(string_of_bool (boolean ~ctx "adversarial_survived" actual))
    (boolean ~ctx "adversarial_survived" actual);
  let min_sessions = int_of_float (num ~ctx "min_sessions" baseline) in
  let got_sessions = int_of_float (num ~ctx "sessions" actual) in
  check ~metric:"serve.sessions"
    ~baseline:(Printf.sprintf ">= %d" min_sessions)
    ~actual:(string_of_int got_sessions)
    (got_sessions >= min_sessions);
  let min_requests = int_of_float (num ~ctx "min_requests" baseline) in
  let requests = int_of_float (num ~ctx "requests" actual) in
  check ~metric:"serve.requests"
    ~baseline:(Printf.sprintf ">= %d" min_requests)
    ~actual:(string_of_int requests)
    (requests >= min_requests);
  (* latency percentiles are wall-clock on a shared CI host: the slack
     multiplier keeps this a catch-the-order-of-magnitude gate (a lost
     pipeline or an accidental global serialization), not a timer *)
  let slack = num ~ctx "latency_slack" baseline in
  let lat name max_name =
    let ceiling = num ~ctx max_name baseline *. slack in
    let v = num ~ctx name actual in
    check ~metric:("serve." ^ name)
      ~baseline:(Printf.sprintf "<= %.0f (x%.0f slack)" ceiling slack)
      ~actual:(Printf.sprintf "%.2f" v)
      (v <= ceiling)
  in
  lat "eco_p50_ms" "max_eco_p50_ms";
  lat "eco_p99_ms" "max_eco_p99_ms";
  lat "query_p50_ms" "max_query_p50_ms";
  lat "query_p99_ms" "max_query_p99_ms"

(* --------------------------------------------------------------------- *)

let () =
  match Sys.argv with
  | [| _; kind; baseline_path; actual_path |] ->
    let baseline = load baseline_path and actual = load actual_path in
    (match kind with
     | "parallel" -> gate_parallel baseline actual
     | "incremental" -> gate_incremental baseline actual
     | "sense" -> gate_sense baseline actual
     | "serve" -> gate_serve baseline actual
     | k ->
       die "unknown kind %S (expected parallel, incremental, sense or serve)"
         k);
    Printf.printf "bench gate: %s vs %s\n" actual_path baseline_path;
    print_table ();
    let failed =
      List.exists (fun r -> r.status = Fail) !rows
    in
    if failed then begin
      prerr_endline "gate: FAILED — a gated metric regressed past its baseline";
      exit 1
    end
    else print_endline "gate: ok"
  | _ ->
    prerr_endline
      "usage: gate.exe <parallel|incremental|sense|serve> <baseline.json> \
       <actual.json>";
    exit 2
